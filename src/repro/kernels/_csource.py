"""C source for the compiled kernel tier (:mod:`repro.kernels.native`).

The source is embedded as a string so the package needs no build step
and no package-data plumbing: the first native-tier call compiles it
with the system C compiler into a cached shared object (see
``_cbuild.py``).  Every function transcribes the seed scalar reference
loop for its kernel — bit-for-bit, including rounding (``rint`` under
the default round-to-nearest-even mode matches ``np.rint``) and the
exact group-testing control flow of the ZFP coder — so the parity
matrix in ``tests/test_fastpath_equivalence.py`` holds by construction.
"""

C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#define API __attribute__((visibility("default")))

/* ---------------- Lorenzo dual-quantization (SZ) ----------------
 * Fused prequantize + iterated first difference over a dense batch of
 * equal blocks laid out (nblocks, b0, b1, b2) C-contiguous (unused
 * trailing dims are 1).  Returns 1 when any |q| exceeds 2^62 (the
 * int64-overflow guard np.prequantize enforces), else 0. */
API int64_t repro_lorenzo_dualquant(
    const double* data, int64_t* out, int64_t nblocks,
    int64_t b0, int64_t b1, int64_t b2, double two_eb)
{
    const int64_t bs = b0 * b1 * b2;
    const double limit = 4611686018427387904.0; /* 2^62 */
    int64_t overflow = 0;
    for (int64_t b = 0; b < nblocks; b++) {
        const double* src = data + b * bs;
        int64_t* q = out + b * bs;
        for (int64_t i = 0; i < bs; i++) {
            double r = rint(src[i] / two_eb);
            if (fabs(r) > limit) { overflow = 1; r = 0.0; }
            q[i] = (int64_t)r;
        }
    }
    if (overflow) return 1;
    for (int64_t b = 0; b < nblocks; b++) {
        int64_t* q = out + b * bs;
        const int64_t s0 = b1 * b2;
        /* axis 0 */
        for (int64_t i = b0 - 1; i >= 1; i--)
            for (int64_t j = 0; j < s0; j++)
                q[i * s0 + j] -= q[(i - 1) * s0 + j];
        /* axis 1 */
        if (b1 > 1)
            for (int64_t i = 0; i < b0; i++)
                for (int64_t j = b1 - 1; j >= 1; j--)
                    for (int64_t k = 0; k < b2; k++)
                        q[i * s0 + j * b2 + k] -= q[i * s0 + (j - 1) * b2 + k];
        /* axis 2 */
        if (b2 > 1)
            for (int64_t i = 0; i < b0 * b1; i++)
                for (int64_t k = b2 - 1; k >= 1; k--)
                    q[i * b2 + k] -= q[i * b2 + k - 1];
    }
    return 0;
}

/* Inverse: iterated cumulative sum (in place), same axis order. */
API void repro_lorenzo_reconstruct(
    int64_t* q_all, int64_t nblocks, int64_t b0, int64_t b1, int64_t b2)
{
    const int64_t bs = b0 * b1 * b2;
    for (int64_t b = 0; b < nblocks; b++) {
        int64_t* q = q_all + b * bs;
        const int64_t s0 = b1 * b2;
        for (int64_t i = 1; i < b0; i++)
            for (int64_t j = 0; j < s0; j++)
                q[i * s0 + j] += q[(i - 1) * s0 + j];
        if (b1 > 1)
            for (int64_t i = 0; i < b0; i++)
                for (int64_t j = 1; j < b1; j++)
                    for (int64_t k = 0; k < b2; k++)
                        q[i * s0 + j * b2 + k] += q[i * s0 + (j - 1) * b2 + k];
        if (b2 > 1)
            for (int64_t i = 0; i < b0 * b1; i++)
                for (int64_t k = 1; k < b2; k++)
                    q[i * b2 + k] += q[i * b2 + k - 1];
    }
}

/* ---------------- variable-length bit packing ----------------
 * MSB-first concatenation of (code, length) pairs into a zeroed byte
 * buffer; same convention as np.packbits(bitorder="big").  Returns the
 * number of bits written. */
API int64_t repro_pack_varlen(
    const uint64_t* codes, const int64_t* lengths, int64_t n, uint8_t* out)
{
    int64_t bitpos = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t remaining = lengths[i];
        const uint64_t code = codes[i];
        while (remaining > 0) {
            int64_t free_bits = 8 - (bitpos & 7);
            int64_t take = remaining < free_bits ? remaining : free_bits;
            uint64_t chunk = (code >> (remaining - take)) & ((1ULL << take) - 1);
            out[bitpos >> 3] |= (uint8_t)(chunk << (free_bits - take));
            bitpos += take;
            remaining -= take;
        }
    }
    return bitpos;
}

/* Fused table-driven Huffman encode: symbols -> codeword bits, plus the
 * per-chunk bit-offset table the parallel decoder needs.  Callers size
 * `out` with repro_huffman_symbol_bits first. */
API int64_t repro_huffman_symbol_bits(
    const int64_t* symbols, int64_t n, const uint8_t* lengths)
{
    int64_t total = 0;
    for (int64_t i = 0; i < n; i++) total += lengths[symbols[i]];
    return total;
}

API int64_t repro_huffman_encode(
    const int64_t* symbols, int64_t n,
    const uint64_t* codes, const uint8_t* lengths,
    int64_t chunk_size, uint64_t* chunk_offsets, uint8_t* out)
{
    int64_t bitpos = 0;
    for (int64_t i = 0; i < n; i++) {
        if (i % chunk_size == 0) chunk_offsets[i / chunk_size] = (uint64_t)bitpos;
        const int64_t sym = symbols[i];
        int64_t remaining = lengths[sym];
        const uint64_t code = codes[sym];
        while (remaining > 0) {
            int64_t free_bits = 8 - (bitpos & 7);
            int64_t take = remaining < free_bits ? remaining : free_bits;
            uint64_t chunk = (code >> (remaining - take)) & ((1ULL << take) - 1);
            out[bitpos >> 3] |= (uint8_t)(chunk << (free_bits - take));
            bitpos += take;
            remaining -= take;
        }
    }
    return bitpos;
}

/* ---------------- chunk-parallel Huffman decode ----------------
 * Dense-table decode of every chunk; bits past the body read as zero,
 * exactly like the numpy path's zero padding.  Returns 0 on success,
 * 1 for an invalid codeword (table hole), 2 for a bit-length overrun. */
static inline uint64_t peek_bits(
    const uint8_t* p, int64_t nbytes, int64_t pos, int nbits)
{
    uint64_t v = 0;
    const int64_t byte = pos >> 3;
    const int shift = (int)(pos & 7);
    const int need = (nbits + shift + 7) >> 3;
    for (int i = 0; i < need; i++) {
        const uint64_t b = (byte + i < nbytes) ? p[byte + i] : 0;
        v = (v << 8) | b;
    }
    return (v >> ((need << 3) - shift - nbits)) & ((1ULL << nbits) - 1);
}

API int64_t repro_huffman_decode(
    const uint8_t* body, int64_t nbytes,
    const int64_t* chunk_offsets, int64_t nchunks,
    int64_t chunk_size, int64_t n,
    const int64_t* table_sym, const int64_t* table_len,
    int64_t max_len, int64_t total_bits, int64_t* out)
{
    int64_t max_cursor = 0;
    for (int64_t c = 0; c < nchunks; c++) {
        int64_t cursor = chunk_offsets[c];
        const int64_t base = c * chunk_size;
        int64_t count = n - base;
        if (count > chunk_size) count = chunk_size;
        for (int64_t s = 0; s < count; s++) {
            const uint64_t key = peek_bits(body, nbytes, cursor, (int)max_len);
            const int64_t len = table_len[key];
            if (len == 0) return 1;
            out[base + s] = table_sym[key];
            cursor += len;
        }
        if (cursor > max_cursor) max_cursor = cursor;
    }
    return (max_cursor > total_bits) ? 2 : 0;
}

/* ---------------- ZFP bit-plane transpose ---------------- */
API void repro_zfp_plane_words(
    const uint64_t* u, int64_t nblocks, int64_t size, int64_t nplanes,
    uint64_t* words /* zeroed (nblocks, nplanes) */)
{
    const uint64_t mask =
        (nplanes >= 64) ? ~0ULL : ((1ULL << nplanes) - 1);
    for (int64_t b = 0; b < nblocks; b++) {
        const uint64_t* ub = u + b * size;
        uint64_t* wb = words + b * nplanes;
        for (int64_t i = 0; i < size; i++) {
            uint64_t x = ub[i] & mask;
            while (x) {
                const int k = __builtin_ctzll(x);
                wb[k] |= 1ULL << i;
                x &= x - 1;
            }
        }
    }
}

API void repro_zfp_words_to_coeffs(
    const uint64_t* words, int64_t nblocks, int64_t nplanes, int64_t size,
    uint64_t* u /* zeroed (nblocks, size) */)
{
    const uint64_t mask = (size >= 64) ? ~0ULL : ((1ULL << size) - 1);
    for (int64_t b = 0; b < nblocks; b++) {
        const uint64_t* wb = words + b * nplanes;
        uint64_t* ub = u + b * size;
        for (int64_t k = 0; k < nplanes; k++) {
            uint64_t x = wb[k] & mask;
            while (x) {
                const int i = __builtin_ctzll(x);
                ub[i] |= 1ULL << k;
                x &= x - 1;
            }
        }
    }
}

/* ---------------- ZFP embedded group-testing coder ----------------
 * Exact transcription of the seed per-block loop (blockcodec's
 * encode_block_planes / decode_block_planes), with the output fused:
 * bits go straight into the final MSB-first packed stream at a running
 * cursor, so there is no byte-per-bit staging, no trim/gather, and no
 * packbits pass afterwards.  `out` arrives zeroed — 0 bits are skips,
 * only 1 bits are written — which also gives fixed-rate blocks their
 * zero padding for free. */
static inline void zfp_put1(uint8_t* out, int64_t cur)
{
    out[cur >> 3] |= (uint8_t)(1u << (7 - (cur & 7)));
}

API void repro_zfp_encode_blocks(
    const uint64_t* words, const uint8_t* nonzero, const int64_t* e,
    int64_t nblocks, int64_t size, int64_t planes,
    const int64_t* budgets, const int64_t* kmins,
    int64_t maxbits,
    uint8_t* out /* zeroed; >= sum of per-block capacities, in bits */,
    int64_t* pos_out, int64_t* used_bits)
{
    const int EB = 12;       /* blockcodec.EBITS */
    const int64_t BIAS = 2048; /* blockcodec.EBIAS */
    const int fixed_rate = maxbits > 0;
    int64_t cur = 0;
    for (int64_t b = 0; b < nblocks; b++) {
        const int64_t start = cur;
        used_bits[b] = 0;
        if (!nonzero[b]) {
            pos_out[b] = fixed_rate ? maxbits : 1; /* '0' flag + zero pad */
            cur = start + pos_out[b];
            continue;
        }
        zfp_put1(out, cur);
        cur++;
        const uint64_t biased = (uint64_t)(e[b] + BIAS);
        for (int i = 0; i < EB; i++)
            if ((biased >> (EB - 1 - i)) & 1)
                zfp_put1(out, cur + i);
        cur += EB;
        const int64_t budget = budgets[b];
        int64_t bits = budget;
        int64_t n = 0;
        const uint64_t* wb = words + b * planes;
        for (int64_t k = planes - 1; k >= kmins[b]; k--) {
            if (bits == 0) break;
            uint64_t x = wb[k];
            const int64_t m = n < bits ? n : bits;
            for (int64_t j = 0; j < m; j++)
                if ((x >> j) & 1)
                    zfp_put1(out, cur + j);
            cur += m;
            bits -= m;
            x = (m >= 64) ? 0 : (x >> m);
            while (n < size && bits) {
                bits--;
                const int test = x != 0;
                if (test) zfp_put1(out, cur);
                cur++;
                if (!test) break;
                while (n < size - 1 && bits) {
                    bits--;
                    const int bit = (int)(x & 1);
                    if (bit) zfp_put1(out, cur);
                    cur++;
                    if (bit) break;
                    x >>= 1;
                    n++;
                }
                x >>= 1;
                n++;
            }
        }
        used_bits[b] = 1 + EB + (budget - bits);
        pos_out[b] = fixed_rate ? maxbits : (cur - start);
        if (fixed_rate) cur = start + maxbits;
    }
}

API void repro_zfp_decode_blocks(
    const uint8_t* bits_arr, const int64_t* offsets, const uint8_t* nonzero,
    int64_t nblocks, int64_t planes, int64_t size,
    const int64_t* budgets, const int64_t* kmins,
    uint64_t* words /* zeroed (nblocks, planes) */)
{
    const int EB = 12;
    for (int64_t b = 0; b < nblocks; b++) {
        if (!nonzero[b]) continue;
        int64_t cur = offsets[b] + 1 + EB;
        int64_t bits = budgets[b];
        int64_t n = 0;
        uint64_t* wb = words + b * planes;
        for (int64_t k = planes - 1; k >= kmins[b]; k--) {
            if (bits == 0) break;
            const int64_t m = n < bits ? n : bits;
            uint64_t x = 0;
            for (int64_t j = 0; j < m; j++)
                x |= ((uint64_t)bits_arr[cur + j]) << j;
            cur += m;
            bits -= m;
            while (n < size && bits) {
                bits--;
                if (!bits_arr[cur++]) break;
                while (n < size - 1 && bits) {
                    bits--;
                    if (bits_arr[cur++]) break;
                    n++;
                }
                x += 1ULL << n;
                n++;
            }
            wb[k] = x;
        }
    }
}
"""
