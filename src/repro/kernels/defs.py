"""Default backend definitions for the kernel registry.

Pure data: kernel names mapped to ``"module.path:callable"`` strings,
imported lazily by :class:`~repro.kernels.registry.Backend` on first
use, so this module creates no import cycles and costs nothing until a
kernel is actually dispatched.

Kernel catalogue (uniform signatures across tiers):

======================  =====================================================
``sz.lorenzo``          ``(blocks, error_bound) -> int64 residuals`` — fused
                        prequantize + Lorenzo first-difference (dual-quant)
``sz.lorenzo_inverse``  ``(residual) -> int64 lattice`` — iterated cumsum
``pack.varlen``         ``(codes, lengths) -> (bytes, nbits)`` — MSB-first
                        variable-length bit packing
``huffman.package_merge``  ``(leaf_weights, max_len) -> counts`` (no native)
``huffman.canonical``   ``(lengths, order) -> codes`` (no native)
``huffman.encode``      ``(symbols, codes, lengths, chunk_size) ->
                        (body, nbits, chunk_offsets)``
``huffman.decode``      ``(body, table_sym, table_len, chunk_offsets, n,
                        chunk_size, max_len, total_bits) -> symbols``
``zfp.transpose``       ``(u, nplanes) -> words`` — bit-plane transpose
``zfp.transpose_inverse``  ``(words, size) -> u``
``zfp.encode``          ``(words, nonzero, e, size, planes, budgets, kmins,
                        maxbits=0) -> (body, nbits, offsets, used_bits)``
``zfp.decode``          ``(bits, offsets, nonzero, planes, size, budgets,
                        kmins) -> words``
======================  =====================================================

A tier may omit kernels (``native`` has no package-merge: length
computation is a cold path); resolution simply continues down the tier
list for those, which is visible in ``kernels.active()``.
"""

from __future__ import annotations

from repro.kernels.registry import Backend, KernelRegistry

SCALAR_IMPLS = {
    "sz.lorenzo": "repro.compressors.sz.predictor:_lorenzo_dualquant_ref",
    "sz.lorenzo_inverse": "repro.compressors.sz.predictor:lorenzo_reconstruct",
    "pack.varlen": "repro.util.bits:_pack_varlen_scalar",
    "huffman.package_merge":
        "repro.lossless.huffman:_package_merge_counts_scalar",
    "huffman.canonical": "repro.lossless.huffman:_canonical_codes_scalar",
    "huffman.encode": "repro.lossless.huffman:_encode_chunks_scalar",
    "huffman.decode": "repro.lossless.huffman:_decode_chunks_scalar",
    "zfp.transpose": "repro.compressors.zfp.blockcodec:_plane_words_scalar",
    "zfp.transpose_inverse":
        "repro.compressors.zfp.blockcodec:_words_matrix_scalar",
    "zfp.encode": "repro.compressors.zfp.zfpcompressor:_encode_blocks_scalar",
    "zfp.decode": "repro.compressors.zfp.blockcodec:_decode_blocks_scalar",
}

NUMPY_IMPLS = {
    # The seed SZ stages were already numpy expressions, so the scalar
    # and numpy tiers share one implementation for the Lorenzo kernels.
    "sz.lorenzo": "repro.compressors.sz.predictor:_lorenzo_dualquant_ref",
    "sz.lorenzo_inverse": "repro.compressors.sz.predictor:lorenzo_reconstruct",
    "pack.varlen": "repro.util.bits:_pack_varlen_numpy",
    "huffman.package_merge": "repro.lossless.huffman:_package_merge_counts",
    "huffman.canonical": "repro.lossless.huffman:_canonical_codes_numpy",
    "huffman.encode": "repro.lossless.huffman:_encode_chunks_numpy",
    "huffman.decode": "repro.lossless.huffman:_decode_chunks_numpy",
    "zfp.transpose": "repro.compressors.zfp.blockcodec:_plane_words_numpy",
    "zfp.transpose_inverse":
        "repro.compressors.zfp.blockcodec:_words_matrix_numpy",
    "zfp.encode": "repro.compressors.zfp.batch:encode_blocks",
    "zfp.decode": "repro.compressors.zfp.batch:decode_blocks",
}

NATIVE_IMPLS = {
    "sz.lorenzo": "repro.kernels.native:lorenzo_dualquant",
    "sz.lorenzo_inverse": "repro.kernels.native:lorenzo_reconstruct",
    "pack.varlen": "repro.kernels.native:pack_varlen",
    "huffman.encode": "repro.kernels.native:huffman_encode",
    "huffman.decode": "repro.kernels.native:huffman_decode",
    "zfp.transpose": "repro.kernels.native:zfp_plane_words",
    "zfp.transpose_inverse": "repro.kernels.native:zfp_words_to_coeffs",
    "zfp.encode": "repro.kernels.native:zfp_encode_blocks",
    "zfp.decode": "repro.kernels.native:zfp_decode_blocks",
}


def _native_probe() -> None:
    from repro.kernels import native

    native.probe()


def register_default_backends(registry: KernelRegistry) -> None:
    registry.register(Backend(name="scalar", impls=dict(SCALAR_IMPLS)))
    registry.register(Backend(name="numpy", impls=dict(NUMPY_IMPLS)))
    registry.register(
        Backend(name="native", impls=dict(NATIVE_IMPLS), probe=_native_probe)
    )
