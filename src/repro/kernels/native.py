"""Native (compiled) kernel tier.

Two flavors, resolved once per process:

``numba``
    ``@njit`` kernels (:mod:`repro.kernels._numba_impl`), used when the
    optional ``numba`` extra is installed.  Lazily compiled on first
    call; numba's on-disk cache makes later processes cheap.
``cc``
    A small C library (:mod:`repro.kernels._csource`) compiled on demand
    with the system C compiler and loaded through :mod:`ctypes`.  The
    shared object is cached under ``$REPRO_KERNEL_CACHE`` (default
    ``~/.cache/repro-kernels``) keyed by a hash of the source and the
    compiler, so compilation happens once per machine, not per process.

``REPRO_NATIVE_FLAVOR={auto,numba,cc}`` pins a flavor; ``auto`` prefers
numba.  When neither flavor can run (no numba, no compiler, compile
failure) every entry point raises
:class:`~repro.errors.KernelUnavailableError`, which the registry treats
as "fall back one tier" — importing this module never hard-fails.

All wrappers implement exactly the same contracts as their scalar and
numpy counterparts (same arguments, same return types, same error
classes and messages) so the registry can swap them freely; bit-exactness
is enforced by the parity matrix in ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.errors import ConfigError, DataError, KernelUnavailableError
from repro.kernels._csource import C_SOURCE

#: Pin the native flavor: ``auto`` (default), ``numba``, or ``cc``.
FLAVOR_ENV = "REPRO_NATIVE_FLAVOR"

#: Directory caching the compiled shared object across processes.
CACHE_ENV = "REPRO_KERNEL_CACHE"

_EBITS = 12  # blockcodec.EBITS; duplicated to avoid an import cycle
_EBIAS = 2048

_state: dict = {"probed": False, "flavor": None, "impl": None, "error": None}


# -- flavor resolution -------------------------------------------------------


def _cache_dir() -> str:
    base = os.environ.get(CACHE_ENV, "").strip()
    if base:
        return base
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-kernels")


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand:
            path = shutil.which(cand)
            if path:
                return path
    return None


def _build_clib() -> ctypes.CDLL:
    """Compile (once, cached) and load the C kernel library."""
    cc = _find_compiler()
    if cc is None:
        raise KernelUnavailableError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256((cc + "\x00" + C_SOURCE).encode()).hexdigest()[:16]
    cache = _cache_dir()
    sopath = os.path.join(cache, f"repro_kernels_{digest}.so")
    if not os.path.exists(sopath):
        try:
            os.makedirs(cache, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache) as tmp:
                src = os.path.join(tmp, "kernels.c")
                out = os.path.join(tmp, "kernels.so")
                with open(src, "w") as fh:
                    fh.write(C_SOURCE)
                proc = subprocess.run(
                    [cc, "-O2", "-fPIC", "-shared", "-o", out, src],
                    capture_output=True, text=True, timeout=300,
                )
                if proc.returncode != 0:
                    raise KernelUnavailableError(
                        f"kernel compile failed: {proc.stderr.strip()[:500]}"
                    )
                os.replace(out, sopath)  # atomic: concurrent builders race safely
        except KernelUnavailableError:
            raise
        except Exception as exc:
            raise KernelUnavailableError(f"kernel build failed: {exc}") from exc
    try:
        return ctypes.CDLL(sopath)
    except OSError as exc:
        raise KernelUnavailableError(f"cannot load {sopath}: {exc}") from exc


class _CImpl:
    """ctypes bindings presenting the same call surface as _numba_impl."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        i64, f64, ptr = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
        sigs = {
            "repro_lorenzo_dualquant": ([ptr, ptr, i64, i64, i64, i64, f64], i64),
            "repro_lorenzo_reconstruct": ([ptr, i64, i64, i64, i64], None),
            "repro_pack_varlen": ([ptr, ptr, i64, ptr], i64),
            "repro_huffman_symbol_bits": ([ptr, i64, ptr], i64),
            "repro_huffman_encode": ([ptr, i64, ptr, ptr, i64, ptr, ptr], i64),
            "repro_huffman_decode":
                ([ptr, i64, ptr, i64, i64, i64, ptr, ptr, i64, i64, ptr], i64),
            "repro_zfp_plane_words": ([ptr, i64, i64, i64, ptr], None),
            "repro_zfp_words_to_coeffs": ([ptr, i64, i64, i64, ptr], None),
            "repro_zfp_encode_blocks":
                ([ptr, ptr, ptr, i64, i64, i64, ptr, ptr, i64, ptr, ptr, ptr],
                 None),
            "repro_zfp_decode_blocks":
                ([ptr, ptr, ptr, i64, i64, i64, ptr, ptr, ptr], None),
        }
        for name, (argtypes, restype) in sigs.items():
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = restype

    @staticmethod
    def _p(arr: np.ndarray) -> ctypes.c_void_p:
        return ctypes.c_void_p(arr.ctypes.data)

    def lorenzo_dualquant(self, data, out, nblocks, b0, b1, b2, two_eb):
        return self._lib.repro_lorenzo_dualquant(
            self._p(data), self._p(out), nblocks, b0, b1, b2, two_eb)

    def lorenzo_reconstruct(self, q, nblocks, b0, b1, b2):
        self._lib.repro_lorenzo_reconstruct(self._p(q), nblocks, b0, b1, b2)

    def pack_varlen(self, codes, lengths, out):
        return self._lib.repro_pack_varlen(
            self._p(codes), self._p(lengths), codes.size, self._p(out))

    def huffman_symbol_bits(self, symbols, lengths):
        return self._lib.repro_huffman_symbol_bits(
            self._p(symbols), symbols.size, self._p(lengths))

    def huffman_encode(self, symbols, codes, lengths, chunk_size,
                       chunk_offsets, out):
        return self._lib.repro_huffman_encode(
            self._p(symbols), symbols.size, self._p(codes), self._p(lengths),
            chunk_size, self._p(chunk_offsets), self._p(out))

    def huffman_decode(self, body, chunk_offsets, chunk_size, n,
                       table_sym, table_len, max_len, total_bits, out):
        return self._lib.repro_huffman_decode(
            self._p(body), body.size, self._p(chunk_offsets),
            chunk_offsets.size, chunk_size, n,
            self._p(table_sym), self._p(table_len), max_len, total_bits,
            self._p(out))

    def zfp_plane_words(self, u, nblocks, size, nplanes, words):
        self._lib.repro_zfp_plane_words(
            self._p(u), nblocks, size, nplanes, self._p(words))

    def zfp_words_to_coeffs(self, words, nblocks, nplanes, size, u):
        self._lib.repro_zfp_words_to_coeffs(
            self._p(words), nblocks, nplanes, size, self._p(u))

    def zfp_encode(self, words, nonzero, e, nblocks, size, planes,
                   budgets, kmins, maxbits, out, pos, used):
        self._lib.repro_zfp_encode_blocks(
            self._p(words), self._p(nonzero), self._p(e), nblocks, size,
            planes, self._p(budgets), self._p(kmins), maxbits,
            self._p(out), self._p(pos), self._p(used))

    def zfp_decode(self, bits, offsets, nonzero, nblocks, planes, size,
                   budgets, kmins, words):
        self._lib.repro_zfp_decode_blocks(
            self._p(bits), self._p(offsets), self._p(nonzero), nblocks,
            planes, size, self._p(budgets), self._p(kmins), self._p(words))


def _resolve():
    """Pick and memoize the (flavor, impl) pair for this process."""
    if _state["probed"]:
        if _state["error"] is not None:
            raise _state["error"]
        return _state["flavor"], _state["impl"]
    pref = os.environ.get(FLAVOR_ENV, "auto").strip().lower() or "auto"
    if pref not in ("auto", "numba", "cc"):
        raise ConfigError(
            f"{FLAVOR_ENV} must be one of ('auto', 'numba', 'cc'), got {pref!r}"
        )
    reasons = []
    flavor = impl = None
    if pref in ("auto", "numba"):
        try:
            from repro.kernels import _numba_impl

            flavor, impl = "numba", _numba_impl
        except Exception as exc:
            reasons.append(f"numba: {type(exc).__name__}: {exc}")
    if impl is None and pref in ("auto", "cc"):
        try:
            flavor, impl = "cc", _CImpl(_build_clib())
        except Exception as exc:
            reasons.append(f"cc: {exc}")
    _state["probed"] = True
    if impl is None:
        _state["error"] = KernelUnavailableError(
            "native kernel tier unavailable (" + "; ".join(reasons) + ")"
        )
        raise _state["error"]
    _state["flavor"], _state["impl"] = flavor, impl
    return flavor, impl


def probe() -> None:
    """Registry availability hook: raises KernelUnavailableError if
    neither the numba nor the cc flavor can run here."""
    _resolve()


def flavor() -> str:
    """Which native flavor this process resolved to ('numba' or 'cc')."""
    return _resolve()[0]


def reset() -> None:
    """Forget the memoized flavor (tests re-probing under new env)."""
    _state.update(probed=False, flavor=None, impl=None, error=None)


# -- kernel wrappers ---------------------------------------------------------


def _block_dims(shape: tuple[int, ...]) -> tuple[int, int, int, int]:
    """(nblocks, b0, b1, b2) for a (nblocks, *block_shape) batch array."""
    nblocks = shape[0]
    dims = list(shape[1:]) + [1] * (3 - len(shape[1:]))
    return nblocks, dims[0], dims[1], dims[2]


def lorenzo_dualquant(blocks: np.ndarray, error_bound: float) -> np.ndarray:
    """Fused prequantize + Lorenzo residual (``sz.lorenzo`` kernel)."""
    _, impl = _resolve()
    if error_bound <= 0 or not np.isfinite(error_bound):
        raise DataError(
            f"error bound must be a positive finite float, got {error_bound}"
        )
    if blocks.ndim - 1 not in (1, 2, 3):
        raise DataError(f"expected (nblocks, ...) batch, got shape {blocks.shape}")
    data = np.ascontiguousarray(blocks, dtype=np.float64)
    out = np.empty(data.shape, dtype=np.int64)
    if data.size:
        nblocks, b0, b1, b2 = _block_dims(data.shape)
        overflow = impl.lorenzo_dualquant(
            data.reshape(-1), out.reshape(-1), nblocks, b0, b1, b2,
            2.0 * error_bound,
        )
        if overflow:
            raise DataError(
                "error bound too small relative to data magnitude (int64 overflow)"
            )
    return out


def lorenzo_reconstruct(residual: np.ndarray) -> np.ndarray:
    """Iterated cumulative sum (``sz.lorenzo_inverse`` kernel)."""
    _, impl = _resolve()
    q = np.ascontiguousarray(residual, dtype=np.int64).copy()
    if q.size:
        nblocks, b0, b1, b2 = _block_dims(q.shape)
        impl.lorenzo_reconstruct(q.reshape(-1), nblocks, b0, b1, b2)
    return q


def pack_varlen(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """MSB-first variable-length bit packing (``pack.varlen`` kernel)."""
    _, impl = _resolve()
    if codes.size == 0:
        return b"", 0
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    out = np.zeros((total + 7) // 8, dtype=np.uint8)
    impl.pack_varlen(codes, lengths, out)
    return out.tobytes(), total


def huffman_encode(
    symbols: np.ndarray, codes: np.ndarray, lengths: np.ndarray, chunk_size: int
) -> tuple[bytes, int, np.ndarray]:
    """Fused symbol->codeword bit packing plus the per-chunk bit-offset
    table (``huffman.encode`` kernel)."""
    _, impl = _resolve()
    symbols = np.ascontiguousarray(symbols, dtype=np.int64)
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    len_u8 = np.ascontiguousarray(lengths, dtype=np.uint8)
    n = symbols.size
    nchunks = max(1, -(-n // chunk_size))
    chunk_offsets = np.zeros(nchunks, dtype=np.uint64)
    if n == 0:
        return b"", 0, chunk_offsets
    total = int(impl.huffman_symbol_bits(symbols, len_u8))
    out = np.zeros((total + 7) // 8, dtype=np.uint8)
    impl.huffman_encode(symbols, codes, len_u8, chunk_size, chunk_offsets, out)
    return out.tobytes(), total, chunk_offsets


def huffman_decode(
    body: bytes,
    table_sym: np.ndarray,
    table_len: np.ndarray,
    chunk_offsets: np.ndarray,
    n: int,
    chunk_size: int,
    max_len: int,
    total_bits: int,
) -> np.ndarray:
    """Chunk-parallel dense-table decode (``huffman.decode`` kernel)."""
    from repro.errors import CorruptStreamError

    _, impl = _resolve()
    body_arr = np.frombuffer(body, dtype=np.uint8)
    table_sym = np.ascontiguousarray(table_sym, dtype=np.int64)
    table_len = np.ascontiguousarray(table_len, dtype=np.int64)
    chunk_offsets = np.ascontiguousarray(chunk_offsets, dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    code = impl.huffman_decode(
        body_arr, chunk_offsets, chunk_size, n, table_sym, table_len,
        max_len, total_bits, out,
    )
    if code == 1:
        raise CorruptStreamError("invalid codeword in Huffman stream")
    if code == 2:
        raise CorruptStreamError("Huffman decode overran declared bit length")
    return out


def zfp_plane_words(u: np.ndarray, nplanes: int) -> np.ndarray:
    """Bit-plane transpose (``zfp.transpose`` kernel)."""
    _, impl = _resolve()
    nblocks, size = u.shape
    u = np.ascontiguousarray(u, dtype=np.uint64)
    words = np.zeros((nblocks, nplanes), dtype=np.uint64)
    if nblocks:
        impl.zfp_plane_words(u.reshape(-1), nblocks, size, nplanes,
                             words.reshape(-1))
    return words


def zfp_words_to_coeffs(words: np.ndarray, size: int) -> np.ndarray:
    """Inverse bit-plane transpose (``zfp.transpose_inverse`` kernel)."""
    _, impl = _resolve()
    nblocks, nplanes = words.shape
    words = np.ascontiguousarray(words, dtype=np.uint64)
    u = np.zeros((nblocks, size), dtype=np.uint64)
    if nblocks:
        impl.zfp_words_to_coeffs(words.reshape(-1), nblocks, nplanes, size,
                                 u.reshape(-1))
    return u


def zfp_encode_blocks(
    words: np.ndarray,
    nonzero: np.ndarray,
    e: np.ndarray,
    size: int,
    planes: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
    maxbits: int = 0,
) -> tuple[bytes, int, np.ndarray, np.ndarray]:
    """Group-testing block coder (``zfp.encode`` kernel); same contract
    as :func:`repro.compressors.zfp.batch.encode_blocks`."""
    from repro.telemetry import get_telemetry

    _, impl = _resolve()
    nblocks = words.shape[0]
    header_bits = 1 + _EBITS
    fixed_rate = maxbits > 0
    capacity = maxbits if fixed_rate else (
        header_bits + planes * (2 * size + 1) + 2 * size + 8
    )
    words = np.ascontiguousarray(words, dtype=np.uint64)
    nonzero_u8 = np.ascontiguousarray(nonzero, dtype=np.uint8)
    e = np.ascontiguousarray(e, dtype=np.int64)
    budgets = np.ascontiguousarray(budgets, dtype=np.int64)
    kmins = np.ascontiguousarray(kmins, dtype=np.int64)
    # The kernel emits straight into the packed MSB-first stream (one
    # pass, no byte-per-bit staging or gather) — `capacity` is only an
    # upper bound sizing the zeroed output buffer.
    out = np.zeros((nblocks * capacity + 7) // 8, dtype=np.uint8)
    pos = np.zeros(nblocks, dtype=np.int64)
    used_bits = np.zeros(nblocks, dtype=np.int64)
    if nblocks:
        impl.zfp_encode(
            words.reshape(-1), nonzero_u8, e, nblocks, size, planes,
            budgets, kmins, maxbits, out, pos, used_bits,
        )
    offsets = np.zeros(nblocks + 1, dtype=np.uint64)
    np.cumsum(pos, out=offsets[1:])
    total = int(offsets[-1])
    get_telemetry().count("zfp.emitted_bits", total)
    body = out[: (total + 7) // 8].tobytes()
    return body, total, offsets, used_bits


def zfp_decode_blocks(
    bits: np.ndarray,
    offsets: np.ndarray,
    nonzero: np.ndarray,
    planes: int,
    size: int,
    budgets: np.ndarray,
    kmins: np.ndarray,
) -> np.ndarray:
    """Mirror of :func:`zfp_encode_blocks`; same contract as
    :func:`repro.compressors.zfp.batch.decode_blocks`."""
    _, impl = _resolve()
    nblocks = offsets.size - 1
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    nonzero_u8 = np.ascontiguousarray(nonzero, dtype=np.uint8)
    budgets = np.ascontiguousarray(budgets, dtype=np.int64)
    kmins = np.ascontiguousarray(kmins, dtype=np.int64)
    words = np.zeros((nblocks, planes), dtype=np.uint64)
    if nblocks:
        impl.zfp_decode(
            bits, offsets, nonzero_u8, nblocks, planes, size, budgets,
            kmins, words.reshape(-1),
        )
    return words
