"""Kernel-backend registry: scalar / numpy / native tiers with fallback.

Every codec hot spot in this library (Lorenzo dual-quantization, the
canonical Huffman codec, the ZFP bit-plane transpose and group-testing
coder, variable-length bit packing) exists in up to three
implementations:

``scalar``
    The seed reference loops — the per-block / per-symbol Python code the
    original reproduction shipped.  Always available; defines the stream
    format bit for bit.
``numpy``
    The vectorized batch kernels (PR 2).  Always available; byte-exact
    with ``scalar``.
``native``
    Compiled kernels (:mod:`repro.kernels.native`): numba ``@njit`` when
    numba is importable, otherwise a small C library compiled on demand
    with the system C compiler and called through ``ctypes``.  Optional;
    byte-exact with ``scalar``.

The registry resolves, per kernel, which implementation actually runs:

1. An explicit request (``use(...)`` context, ``CBench(backend=...)``,
   ``REPRO_BACKEND``) names a tier or ``auto``.
2. ``auto`` walks the tier list best-first (``native`` → ``numpy`` →
   ``scalar``) and picks the first backend that probes as available and
   provides the kernel.
3. A backend that raises at *call* time (anything other than a
   :class:`~repro.errors.ReproError` data/stream error) is tripped for
   that kernel and the call transparently re-dispatches one tier down —
   daemons keep serving, only slower.

``REPRO_SCALAR_CODECS=1`` remains supported as a deprecated alias for
``REPRO_BACKEND=scalar`` so existing scripts and benchmarks keep
working unchanged.
"""

from __future__ import annotations

import importlib
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError, KernelUnavailableError, ReproError
from repro.telemetry import get_telemetry

#: Environment variable selecting the backend tier (or ``auto``).
BACKEND_ENV = "REPRO_BACKEND"

#: Deprecated alias: truthy values mean ``REPRO_BACKEND=scalar``.
LEGACY_SCALAR_ENV = "REPRO_SCALAR_CODECS"

#: Tier preference for ``auto`` resolution, best first.
TIER_ORDER = ("native", "numpy", "scalar")

#: Numeric tier levels for the ``kernels.backend{stage=...}`` gauge.
TIER_LEVEL = {"scalar": 0, "numpy": 1, "native": 2}

_TRUTHY = ("1", "true", "yes", "on")


@dataclass
class Backend:
    """One registered implementation tier.

    ``impls`` maps kernel names to ``"module.path:callable"`` strings;
    the import happens on first use so registering the native tier never
    costs a compile (or a failed import) until a kernel is actually
    requested from it.  ``probe`` is an optional availability check run
    once; it must raise :class:`KernelUnavailableError` (or any
    exception) when the backend cannot run in this process.
    """

    name: str
    impls: dict[str, str]
    probe: Callable[[], None] | None = None
    _probe_result: Exception | None = field(default=None, repr=False)
    _probed: bool = field(default=False, repr=False)
    _resolved: dict[str, Callable] = field(default_factory=dict, repr=False)

    def available(self) -> bool:
        return self.unavailable_reason() is None

    def unavailable_reason(self) -> str | None:
        """``None`` when usable, else a one-line human-readable reason."""
        if not self._probed:
            self._probed = True
            if self.probe is not None:
                try:
                    self.probe()
                except Exception as exc:  # probe failures are data, not bugs
                    self._probe_result = exc
        if self._probe_result is None:
            return None
        return f"{type(self._probe_result).__name__}: {self._probe_result}"

    def kernel(self, name: str) -> Callable | None:
        """The implementation of ``name``, importing lazily; ``None`` if
        this backend does not provide the kernel."""
        if name in self._resolved:
            return self._resolved[name]
        spec = self.impls.get(name)
        if spec is None:
            return None
        module_name, _, attr = spec.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        self._resolved[name] = fn
        return fn

    def reset(self) -> None:
        """Forget probe results and tripped state (tests, hot reload)."""
        self._probed = False
        self._probe_result = None
        self._resolved.clear()


class KernelRegistry:
    """Process-wide registry of backends and per-kernel dispatch state."""

    def __init__(self) -> None:
        self._backends: dict[str, Backend] = {}
        self._lock = threading.Lock()
        #: (backend, kernel) pairs disabled after a call-time failure.
        self._tripped: dict[tuple[str, str], str] = {}
        #: kernel -> backend name that served the most recent call.
        self._active: dict[str, str] = {}
        #: Process-wide override installed by :func:`use` / ``set_backend``.
        self._override: str | None = None

    # -- registration ------------------------------------------------------

    def register(self, backend: Backend) -> None:
        if backend.name not in TIER_ORDER:
            raise ConfigError(
                f"unknown backend tier {backend.name!r}; expected one of {TIER_ORDER}"
            )
        self._backends[backend.name] = backend

    def backends(self) -> dict[str, Backend]:
        self._ensure_defs()
        return dict(self._backends)

    def _ensure_defs(self) -> None:
        if not self._backends:
            from repro.kernels import defs  # registers the three tiers

            defs.register_default_backends(self)

    # -- selection ---------------------------------------------------------

    def requested_backend(self) -> str:
        """The tier the process is asking for: override > env > auto."""
        if self._override is not None:
            return self._override
        raw = os.environ.get(BACKEND_ENV, "").strip().lower()
        if raw:
            if raw not in TIER_ORDER + ("auto",):
                raise ConfigError(
                    f"{BACKEND_ENV} must be one of "
                    f"{TIER_ORDER + ('auto',)}, got {raw!r}"
                )
            return raw
        legacy = os.environ.get(LEGACY_SCALAR_ENV, "").strip().lower()
        if legacy in _TRUTHY:
            return "scalar"
        return "auto"

    def set_backend(self, backend: str | None) -> None:
        """Install a process-wide backend override (``None`` clears it)."""
        if backend is not None:
            backend = str(backend).strip().lower()
            if backend not in TIER_ORDER + ("auto",):
                raise ConfigError(
                    f"backend must be one of {TIER_ORDER + ('auto',)}, "
                    f"got {backend!r}"
                )
        self._override = backend

    def current_override(self) -> str | None:
        return self._override

    def _chain(self, request: str) -> list[str]:
        """Tier names to try, in order, for a requested backend."""
        if request == "auto":
            return list(TIER_ORDER)
        # An explicit tier starts there but still degrades downward so a
        # daemon configured for `native` keeps serving on a host without
        # a compiler — the degradation is observable via active().
        start = TIER_ORDER.index(request)
        return list(TIER_ORDER[start:])

    def resolve(self, kernel: str, backend: str | None = None) -> tuple[str, Callable]:
        """Pick ``(backend_name, impl)`` for one kernel call."""
        self._ensure_defs()
        request = backend if backend is not None else self.requested_backend()
        if request not in TIER_ORDER + ("auto",):
            raise ConfigError(
                f"backend must be one of {TIER_ORDER + ('auto',)}, got {request!r}"
            )
        for name in self._chain(request):
            be = self._backends.get(name)
            if be is None or not be.available():
                continue
            if (name, kernel) in self._tripped:
                continue
            fn = be.kernel(kernel)
            if fn is None:
                continue
            return name, fn
        raise KernelUnavailableError(
            f"no backend provides kernel {kernel!r} (requested {request!r})"
        )

    # -- dispatch ----------------------------------------------------------

    def call(self, kernel: str, *args: Any, backend: str | None = None, **kwargs: Any):
        """Run ``kernel`` on the best available backend, degrading on
        call-time failure.

        :class:`~repro.errors.ReproError` subclasses other than
        :class:`KernelUnavailableError` (bad data, corrupt streams) are
        *results*, not backend failures — they propagate.  Anything else
        trips the (backend, kernel) pair and re-dispatches one tier down.
        """
        while True:
            name, fn = self.resolve(kernel, backend)
            try:
                result = fn(*args, **kwargs)
            except KernelUnavailableError as exc:
                if name == "scalar":
                    raise
                self._trip(name, kernel, str(exc))
                continue
            except ReproError:
                self._active[kernel] = name
                raise
            except Exception as exc:
                if name == "scalar":
                    # The reference tier has no tier below it; a scalar
                    # failure is a real bug and must surface.
                    raise
                self._trip(name, kernel, f"{type(exc).__name__}: {exc}")
                continue
            self._active[kernel] = name
            return result

    def _trip(self, backend: str, kernel: str, reason: str) -> None:
        with self._lock:
            self._tripped[(backend, kernel)] = reason
        tm = get_telemetry()
        tm.count(f'kernels.fallback{{stage="{kernel}",backend="{backend}"}}')

    # -- introspection -----------------------------------------------------

    def active(self, backend: str | None = None) -> dict[str, str]:
        """Resolved backend per kernel under the current selection.

        Kernels that have already served a call report the tier that
        actually ran; the rest report what :meth:`resolve` would pick.
        """
        self._ensure_defs()
        out: dict[str, str] = {}
        for kernel in sorted(self._kernel_names()):
            try:
                out[kernel] = self.resolve(kernel, backend)[0]
            except KernelUnavailableError:  # pragma: no cover - scalar always there
                out[kernel] = "unavailable"
        return out

    def last_used(self) -> dict[str, str]:
        """Backend that served the most recent call, per kernel."""
        return dict(self._active)

    def tripped(self) -> dict[tuple[str, str], str]:
        return dict(self._tripped)

    def _kernel_names(self) -> set[str]:
        names: set[str] = set()
        for be in self._backends.values():
            names.update(be.impls)
        return names

    def publish_gauges(self, tm=None) -> dict[str, str]:
        """Export the resolved tier per kernel as labelled gauges.

        ``kernels.backend{stage=...}`` carries the numeric tier level
        (0=scalar, 1=numpy, 2=native) and
        ``kernels.backend_info{stage=...,backend=...}`` is a constant-1
        info gauge, so both Prometheus consumers and the fleet view can
        show which tier each shard actually runs.
        """
        tm = tm if tm is not None else get_telemetry()
        mapping = self.active()
        for kernel, name in mapping.items():
            tm.set_gauge(
                f'kernels.backend{{stage="{kernel}"}}',
                float(TIER_LEVEL.get(name, -1)),
            )
            tm.set_gauge(
                f'kernels.backend_info{{backend="{name}",stage="{kernel}"}}', 1.0
            )
        return mapping

    def reset(self) -> None:
        """Clear tripped/active/probe state (test isolation)."""
        with self._lock:
            self._tripped.clear()
            self._active.clear()
        for be in self._backends.values():
            be.reset()


#: The process-wide registry instance.
REGISTRY = KernelRegistry()
