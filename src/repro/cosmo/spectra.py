"""Analytic matter power spectrum models.

The linear matter power spectrum is modeled as a primordial power law
shaped by the BBKS transfer function (Bardeen, Bond, Kaiser & Szalay
1986) — accurate enough to give the synthetic fields realistic large-scale
structure without a Boltzmann solver:

    P(k) = A * k^ns * T(q)^2,  q = k / (Omega_m * h^2)  [k in h/Mpc]

    T(q) = ln(1 + 2.34 q)/(2.34 q) *
           [1 + 3.89 q + (16.1 q)^2 + (5.46 q)^3 + (6.71 q)^4]^(-1/4)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class CosmoPowerSpectrum:
    """BBKS-shaped linear matter power spectrum.

    Parameters roughly match the WMAP/Planck-era cosmologies HACC and Nyx
    run (Omega_m ~ 0.31, h ~ 0.68, ns ~ 0.96); ``amplitude`` sets the
    overall normalization in (Mpc/h)^3.
    """

    omega_m: float = 0.31
    h: float = 0.68
    ns: float = 0.96
    amplitude: float = 2.0e4

    def transfer(self, k: np.ndarray) -> np.ndarray:
        """BBKS transfer function at wavenumber ``k`` (h/Mpc)."""
        k = np.asarray(k, dtype=np.float64)
        gamma = self.omega_m * self.h
        q = np.where(k > 0, k / max(gamma, 1e-8), 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(
                q > 0,
                np.log1p(2.34 * q) / (2.34 * q)
                * (1 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4)
                ** -0.25,
                1.0,
            )
        return t

    def __call__(self, k: np.ndarray) -> np.ndarray:
        """P(k) in (Mpc/h)^3; P(0) = 0 (no DC power)."""
        k = np.asarray(k, dtype=np.float64)
        k_safe = np.where(k > 0, k, 1.0)
        pk = self.amplitude * k_safe**self.ns * self.transfer(k) ** 2
        return np.where(k > 0, pk, 0.0)

    def velocity_spectrum(self, k: np.ndarray) -> np.ndarray:
        """Linear-theory velocity spectrum shape, P_v(k) ~ P(k)/k^2."""
        k = np.asarray(k, dtype=np.float64)
        k_safe = np.where(k > 0, k, 1.0)
        return np.where(k > 0, self(k) / k_safe**2, 0.0)


def power_law_spectrum(amplitude: float, index: float) -> CosmoPowerSpectrum:
    """A pure power-law P(k) = A k^index (transfer function disabled).

    Useful for tests where the expected spectrum must be known exactly.
    """
    check_positive(amplitude, "amplitude")

    class _PowerLaw(CosmoPowerSpectrum):
        def transfer(self, k: np.ndarray) -> np.ndarray:  # noqa: D102
            return np.ones_like(np.asarray(k, dtype=np.float64))

    return _PowerLaw(amplitude=amplitude, ns=index)
