"""Particle-mesh (PM) gravity solver — HACC's long-range force method.

The paper (Section II-B): "HACC solves an N-body problem involving ...
a grid-based medium-/long-range force solver based on a particle-mesh
method".  This module implements that solver at laptop scale so the
in-situ compression workflow can run against an actual evolving
simulation rather than static snapshots:

1. CIC-deposit particle mass onto a periodic mesh;
2. solve Poisson's equation spectrally: ``phi_hat = -4 pi G delta_hat / k^2``;
3. differentiate spectrally for the acceleration mesh,
   ``a_hat_i = -i k_i phi_hat``;
4. CIC-gather accelerations back to the particles;
5. advance with kick-drift-kick leapfrog.

Units are simulation-internal (``G = 1``, comoving box); the physics
claims the tests check are unit-free: zero force on uniform matter,
attraction toward overdensities, momentum conservation, and growth of
structure from Zel'dovich initial conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cosmo.cic import cic_deposit, cic_gather, density_contrast
from repro.errors import DataError
from repro.util.validation import check_positive


@dataclass
class PMState:
    """Positions and velocities of all particles at one time."""

    positions: np.ndarray
    velocities: np.ndarray
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.positions.shape != self.velocities.shape or self.positions.ndim != 2:
            raise DataError("positions/velocities must both be (N, 3)")


class ParticleMeshSolver:
    """Spectral Poisson solver + leapfrog integrator on a periodic box."""

    def __init__(
        self,
        box_size: float,
        mesh_size: int = 32,
        particle_mass: float = 1.0,
        gravitational_constant: float = 1.0,
        smoothing_cells: float = 1.0,
    ) -> None:
        check_positive(box_size, "box_size")
        if mesh_size < 4:
            raise DataError("mesh_size must be >= 4")
        self.box_size = box_size
        self.mesh_size = mesh_size
        self.particle_mass = particle_mass
        self.G = gravitational_constant
        k1 = 2.0 * np.pi * np.fft.fftfreq(mesh_size, d=box_size / mesh_size)
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        self._k = (kx, ky, kz)
        k2 = kx**2 + ky**2 + kz**2
        k2[0, 0, 0] = 1.0
        # Green's function with a Gaussian anti-ringing filter — sharp
        # (CIC-deposited) sources excite Nyquist modes that make a pure
        # ik gradient oscillate; HACC's PM solver likewise spectrally
        # filters its Green function.
        sigma = smoothing_cells * box_size / mesh_size
        self._green = -np.exp(-0.5 * k2 * sigma**2) / k2
        self._green[0, 0, 0] = 0.0  # no DC force

    # -- force evaluation ----------------------------------------------------

    def acceleration(self, positions: np.ndarray) -> np.ndarray:
        """PM acceleration at each particle position.

        Spectral Poisson solve for the potential, then a second-order
        central difference for the gradient (the standard PM recipe:
        FD gradients of the filtered potential are monotone where pure
        spectral derivatives ring).
        """
        mass = cic_deposit(positions, self.mesh_size, self.box_size,
                           weights=np.full(positions.shape[0], self.particle_mass))
        # Mean density sources no force in a periodic (comoving) box.
        cell_volume = (self.box_size / self.mesh_size) ** 3
        delta_rho = mass / cell_volume - mass.sum() / self.box_size**3
        rho_hat = np.fft.fftn(delta_rho)
        phi = np.fft.ifftn(4.0 * np.pi * self.G * rho_hat * self._green).real
        spacing = self.box_size / self.mesh_size
        acc = np.empty_like(positions)
        for d in range(3):
            acc_grid = -(np.roll(phi, -1, axis=d) - np.roll(phi, 1, axis=d)) / (
                2.0 * spacing
            )
            acc[:, d] = cic_gather(acc_grid, positions, self.box_size)
        return acc

    def potential_energy_proxy(self, positions: np.ndarray) -> float:
        """``-0.5 sum delta phi`` on the mesh (diagnostic, not exact PE)."""
        mass = cic_deposit(positions, self.mesh_size, self.box_size)
        delta = density_contrast(mass)
        delta_hat = np.fft.fftn(delta)
        phi = np.fft.ifftn(4.0 * np.pi * self.G * delta_hat * self._green).real
        return float(0.5 * np.sum(delta * phi))

    # -- time stepping ---------------------------------------------------------

    def step(self, state: PMState, dt: float) -> PMState:
        """One kick-drift-kick leapfrog step (returns a new state)."""
        check_positive(dt, "dt")
        acc = self.acceleration(state.positions)
        vel_half = state.velocities + 0.5 * dt * acc
        pos_new = np.mod(state.positions + dt * vel_half, self.box_size)
        acc_new = self.acceleration(pos_new)
        vel_new = vel_half + 0.5 * dt * acc_new
        return PMState(positions=pos_new, velocities=vel_new, time=state.time + dt)

    def evolve(
        self,
        state: PMState,
        dt: float,
        n_steps: int,
        callback=None,
    ) -> PMState:
        """Run ``n_steps`` steps; ``callback(step_index, state)`` after each
        (the hook the in-situ compression loop plugs into)."""
        if n_steps < 1:
            raise DataError("n_steps must be >= 1")
        for i in range(n_steps):
            state = self.step(state, dt)
            if callback is not None:
                callback(i, state)
        return state


def zeldovich_initial_conditions(
    particles_per_side: int,
    box_size: float,
    seed: int = 0,
    displacement_sigma: float = 0.5,
    velocity_factor: float = 1.0,
) -> PMState:
    """Zel'dovich ICs on a lattice (the standard N-body starting point).

    ``displacement_sigma`` is in mean interparticle spacings; velocities
    follow the linear-theory ``v  ~ psi`` relation scaled by
    ``velocity_factor``.
    """
    from repro.cosmo.grf import displacement_field, gaussian_random_field
    from repro.cosmo.spectra import CosmoPowerSpectrum

    n = particles_per_side
    if n < 4:
        raise DataError("particles_per_side must be >= 4")
    rng = np.random.default_rng(seed)
    spec = CosmoPowerSpectrum()
    delta = gaussian_random_field(n, box_size, spec, rng)
    delta /= max(delta.std(), 1e-30)
    psi = displacement_field(delta, box_size)
    psi_sigma = max(float(np.sqrt(np.mean([p.var() for p in psi]))), 1e-30)
    spacing = box_size / n
    scale = displacement_sigma * spacing / psi_sigma

    g = (np.arange(n) + 0.5) * spacing
    lattice = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
    disp = np.stack([p.ravel() for p in psi], axis=1) * scale
    return PMState(
        positions=np.mod(lattice + disp, box_size),
        velocities=velocity_factor * disp,
        time=0.0,
    )
