"""Cosmology substrate: synthetic HACC/Nyx data and domain analyses.

The paper's evaluation data (a 1.07e9-particle HACC snapshot and a 512^3
Nyx snapshot) is proprietary-scale; this package generates *synthetic
equivalents* with the same layout, value ranges (Table II), and — most
importantly — the same statistical structure the domain metrics probe:
clustered matter with a cosmological power spectrum, so that power-spectrum
ratios and FoF halo populations respond to compression error the way the
paper's data does.
"""

from repro.cosmo.datasets import (
    FieldSpec,
    HACC_TABLE_II,
    NYX_TABLE_II,
    ParticleDataset,
    GridDataset,
)
from repro.cosmo.fof import FOFResult, friends_of_friends
from repro.cosmo.grf import gaussian_random_field
from repro.cosmo.hacc import make_hacc_dataset
from repro.cosmo.halos import HaloCatalog, halo_mass_function
from repro.cosmo.nyx import make_nyx_dataset
from repro.cosmo.power_spectrum import (
    correlation_function,
    particle_power_spectrum,
    power_spectrum,
    power_spectrum_ratio,
)
from repro.cosmo.pm import (
    ParticleMeshSolver,
    PMState,
    zeldovich_initial_conditions,
)
from repro.cosmo.spectra import CosmoPowerSpectrum
from repro.cosmo.timeseries import SnapshotSeries, make_nyx_series

__all__ = [
    "FieldSpec",
    "HACC_TABLE_II",
    "NYX_TABLE_II",
    "ParticleDataset",
    "GridDataset",
    "FOFResult",
    "friends_of_friends",
    "gaussian_random_field",
    "make_hacc_dataset",
    "HaloCatalog",
    "halo_mass_function",
    "make_nyx_dataset",
    "power_spectrum",
    "particle_power_spectrum",
    "power_spectrum_ratio",
    "correlation_function",
    "CosmoPowerSpectrum",
    "SnapshotSeries",
    "make_nyx_series",
    "ParticleMeshSolver",
    "PMState",
    "zeldovich_initial_conditions",
]
