"""Matter power spectrum estimation (the paper's Metric 3b).

``power_spectrum`` measures P(k) of a 3-D grid field by spherically
averaging ``V |delta_hat|^2 / N^6`` in logarithmic k bins;
``particle_power_spectrum`` first deposits particles with CIC (with the
standard CIC window deconvolution) and measures the density contrast.

``power_spectrum_ratio`` is the quantity plotted in Fig. 5: the ratio of
the reconstructed data's spectrum to the original's in matched bins —
the paper's acceptance band is ``1 +/- 1%``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmo.cic import cic_deposit, density_contrast
from repro.errors import AnalysisError, DataError
from repro.util.validation import check_positive, check_shape_nd


@dataclass(frozen=True)
class PowerSpectrumResult:
    """Binned spectrum: bin-center wavenumbers, P(k), and mode counts."""

    k: np.ndarray
    pk: np.ndarray
    counts: np.ndarray


def _k_grid(n: int, box_size: float) -> np.ndarray:
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box_size / n)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    return np.sqrt(kx**2 + ky**2 + kz**2)


def power_spectrum(
    field: np.ndarray,
    box_size: float,
    nbins: int = 20,
    subtract_mean: bool = True,
    window_correction: np.ndarray | None = None,
) -> PowerSpectrumResult:
    """Spherically averaged P(k) of a cubic grid field."""
    field = np.asarray(field, dtype=np.float64)
    check_shape_nd(field, 3, "field")
    n = field.shape[0]
    if field.shape != (n, n, n):
        raise DataError("field must be cubic")
    check_positive(box_size, "box_size")
    volume = box_size**3

    data = field - field.mean() if subtract_mean else field
    fhat = np.fft.fftn(data)
    power = (np.abs(fhat) ** 2) * volume / n**6
    if window_correction is not None:
        power = power * window_correction

    kmag = _k_grid(n, box_size)
    k_min = 2.0 * np.pi / box_size
    k_max = np.pi * n / box_size  # Nyquist
    edges = np.geomspace(k_min * 0.999, k_max, nbins + 1)
    which = np.digitize(kmag.ravel(), edges) - 1
    valid = (which >= 0) & (which < nbins) & (kmag.ravel() > 0)
    counts = np.bincount(which[valid], minlength=nbins)
    psum = np.bincount(which[valid], weights=power.ravel()[valid], minlength=nbins)
    ksum = np.bincount(which[valid], weights=kmag.ravel()[valid], minlength=nbins)
    nonempty = counts > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        pk = np.where(nonempty, psum / np.maximum(counts, 1), np.nan)
        kc = np.where(nonempty, ksum / np.maximum(counts, 1), np.nan)
    return PowerSpectrumResult(k=kc[nonempty], pk=pk[nonempty], counts=counts[nonempty])


def _cic_window_correction(n: int) -> np.ndarray:
    """Inverse squared CIC assignment window, ``prod sinc^-4(k_i/2k_Ny)``."""
    w1 = np.sinc(np.fft.fftfreq(n))  # = sin(pi k / n) / (pi k / n)
    wx, wy, wz = np.meshgrid(w1, w1, w1, indexing="ij")
    w = (wx * wy * wz) ** 2
    return 1.0 / np.maximum(w**2, 1e-12)


def particle_power_spectrum(
    positions: np.ndarray,
    box_size: float,
    grid_size: int = 128,
    nbins: int = 20,
    deconvolve_window: bool = True,
) -> PowerSpectrumResult:
    """P(k) of a particle set via CIC deposition.

    Shot noise is *not* subtracted — the paper's pk-ratio metric divides
    two spectra of the same particle count, so shot noise cancels to first
    order.
    """
    grid = cic_deposit(positions, grid_size, box_size)
    delta = density_contrast(grid)
    corr = _cic_window_correction(grid_size) if deconvolve_window else None
    return power_spectrum(delta, box_size, nbins=nbins, window_correction=corr)


def power_spectrum_ratio(
    reference: PowerSpectrumResult, other: PowerSpectrumResult
) -> np.ndarray:
    """``other.pk / reference.pk`` in matched bins (Fig. 5's y axis)."""
    if reference.k.shape != other.k.shape or not np.allclose(
        reference.k, other.k, rtol=1e-6, equal_nan=True
    ):
        raise AnalysisError("power spectra were binned differently")
    with np.errstate(invalid="ignore", divide="ignore"):
        return other.pk / reference.pk


@dataclass(frozen=True)
class CorrelationFunctionResult:
    """Binned two-point correlation function xi(r)."""

    r: np.ndarray
    xi: np.ndarray
    counts: np.ndarray


def correlation_function(
    field: np.ndarray,
    box_size: float,
    nbins: int = 16,
) -> CorrelationFunctionResult:
    """Two-point correlation function xi(r) of a grid field.

    The paper (Metric 3b): "The two-point correlation function xi(r) ...
    statistically describes the amount of [structure] at each physical
    scale.  The Fourier transform of xi(r) is called the matter power
    spectrum."  Computed via Wiener-Khinchin — the inverse FFT of
    |delta_hat|^2 — normalized so ``xi(0)`` equals the field variance,
    then spherically averaged in logarithmic separation bins.
    """
    field = np.asarray(field, dtype=np.float64)
    check_shape_nd(field, 3, "field")
    n = field.shape[0]
    if field.shape != (n, n, n):
        raise DataError("field must be cubic")
    check_positive(box_size, "box_size")

    delta = field - field.mean()
    fhat = np.fft.fftn(delta)
    xi_grid = np.fft.ifftn(np.abs(fhat) ** 2).real / n**3

    # Periodic separation of every grid lag from the origin.
    d1 = np.minimum(np.arange(n), n - np.arange(n)) * (box_size / n)
    dx, dy, dz = np.meshgrid(d1, d1, d1, indexing="ij")
    rmag = np.sqrt(dx**2 + dy**2 + dz**2)

    r_min = box_size / n
    r_max = box_size / 2.0
    edges = np.geomspace(r_min * 0.999, r_max, nbins + 1)
    which = np.digitize(rmag.ravel(), edges) - 1
    valid = (which >= 0) & (which < nbins) & (rmag.ravel() > 0)
    counts = np.bincount(which[valid], minlength=nbins)
    xsum = np.bincount(which[valid], weights=xi_grid.ravel()[valid], minlength=nbins)
    rsum = np.bincount(which[valid], weights=rmag.ravel()[valid], minlength=nbins)
    nonempty = counts > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        xi = np.where(nonempty, xsum / np.maximum(counts, 1), np.nan)
        rc = np.where(nonempty, rsum / np.maximum(counts, 1), np.nan)
    return CorrelationFunctionResult(
        r=rc[nonempty], xi=xi[nonempty], counts=counts[nonempty]
    )


def ratio_within_band(ratio: np.ndarray, tolerance: float = 0.01) -> bool:
    """True when every binned ratio lies within ``1 +/- tolerance`` —
    the paper's acceptability criterion for a compression configuration."""
    finite = np.isfinite(ratio)
    if not finite.any():
        raise AnalysisError("no finite power-spectrum ratio bins")
    return bool(np.all(np.abs(ratio[finite] - 1.0) <= tolerance))
