"""Compressed simulation checkpoints.

The paper's storage argument applies to checkpoint/restart as much as to
analysis outputs: a PM simulation state (positions + velocities) written
with error-bounded compression costs a fraction of the raw bytes, and a
restart from the compressed checkpoint stays within the error bound of
the uncompressed trajectory for a controllable horizon.

Checkpoints are GenericIO-like files whose variables hold the SZ streams
per component, so the I/O substrate and codecs compose end to end.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.compressors.sz import SZCompressor
from repro.cosmo.pm import PMState
from repro.errors import CorruptStreamError, DataError
from repro.io.genericio import read_genericio, write_genericio

_COMPONENTS = ("x", "y", "z", "vx", "vy", "vz")


def write_checkpoint(
    path: str | Path,
    state: PMState,
    position_bound: float = 1e-3,
    velocity_pwrel: float = 1e-3,
    compressor: SZCompressor | None = None,
) -> dict[str, float]:
    """Write a compressed checkpoint; returns size statistics."""
    if position_bound <= 0 or velocity_pwrel <= 0:
        raise DataError("bounds must be positive")
    sz = compressor or SZCompressor()
    variables: dict[str, np.ndarray] = {}
    raw_bytes = 0
    comp_bytes = 0
    for i, name in enumerate(_COMPONENTS):
        if name.startswith("v"):
            data = state.velocities[:, i - 3].astype(np.float32)
            buf = sz.compress(data, pwrel=velocity_pwrel, mode="pw_rel")
        else:
            data = state.positions[:, i].astype(np.float32)
            buf = sz.compress(data, error_bound=position_bound, mode="abs")
        variables[name] = np.frombuffer(buf.payload, dtype=np.uint8).copy()
        raw_bytes += data.nbytes
        comp_bytes += len(buf.payload)
    variables["_time"] = np.array([state.time], dtype=np.float64)
    write_genericio(path, variables)
    return {
        "raw_bytes": float(raw_bytes),
        "compressed_bytes": float(comp_bytes),
        "compression_ratio": raw_bytes / comp_bytes,
    }


def read_checkpoint(
    path: str | Path, compressor: SZCompressor | None = None
) -> PMState:
    """Restore a :class:`PMState` from a compressed checkpoint."""
    sz = compressor or SZCompressor()
    gio = read_genericio(path)
    missing = [n for n in (*_COMPONENTS, "_time") if n not in gio.variables]
    if missing:
        raise CorruptStreamError(f"checkpoint missing variables: {missing}")
    arrays = {}
    for name in _COMPONENTS:
        arrays[name] = sz.decompress(gio.variables[name].tobytes())
    n = arrays["x"].size
    if any(arrays[k].size != n for k in _COMPONENTS):
        raise CorruptStreamError("checkpoint component lengths disagree")
    positions = np.stack([arrays[k] for k in ("x", "y", "z")], axis=1).astype(np.float64)
    velocities = np.stack([arrays[k] for k in ("vx", "vy", "vz")], axis=1).astype(np.float64)
    return PMState(
        positions=positions,
        velocities=velocities,
        time=float(gio.variables["_time"][0]),
    )
