"""Halo catalogs and mass functions from FoF output.

Implements the halo concepts the paper names (Section III, Metric 3a):

* a halo = an FoF group above a minimum membership;
* the **Most Connected Particle** (MCP) = the member with the most
  friends (highest friendship degree within the group);
* the **Most Bound Particle** (MBP) = the member with the lowest
  gravitational potential, computed by direct pairwise summation (large
  halos are subsampled — documented approximation);
* the halo **mass function**: halo counts in logarithmic mass bins,
  whose original-vs-reconstructed ratio is Fig. 6's right axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cosmo.fof import FOFResult, friends_of_friends
from repro.errors import AnalysisError, DataError
from repro.util.validation import check_positive


@dataclass
class HaloCatalog:
    """Halos of one snapshot: sizes, masses, centers, MCP/MBP indices."""

    sizes: np.ndarray          # members per halo
    masses: np.ndarray         # sizes * particle_mass
    centers: np.ndarray        # (nhalos, 3) periodic centroids
    mcp: np.ndarray            # particle index of the Most Connected Particle
    mbp: np.ndarray            # particle index of the Most Bound Particle
    particle_mass: float
    min_members: int
    box_size: float
    members: list[np.ndarray] = field(default_factory=list, repr=False)

    @property
    def n_halos(self) -> int:
        return int(self.sizes.size)


def _periodic_centroid(pos: np.ndarray, box_size: float) -> np.ndarray:
    """Centroid with minimum-image unwrapping relative to the first member."""
    ref = pos[0]
    d = pos - ref
    d -= box_size * np.rint(d / box_size)
    return np.mod(ref + d.mean(axis=0), box_size)


def _most_bound(pos: np.ndarray, box_size: float, rng: np.random.Generator, cap: int = 512) -> int:
    """Index (within ``pos``) of the minimum-potential member.

    Potential is a direct ``-sum 1/r`` over members, subsampled to ``cap``
    sources for large halos (keeps the cost quadratic only in ``cap``).
    """
    m = pos.shape[0]
    src = pos if m <= cap else pos[rng.choice(m, size=cap, replace=False)]
    d = pos[:, None, :] - src[None, :, :]
    d -= box_size * np.rint(d / box_size)
    r = np.sqrt(np.einsum("ijk,ijk->ij", d, d))
    with np.errstate(divide="ignore"):
        inv = np.where(r > 0, 1.0 / r, 0.0)
    phi = -inv.sum(axis=1)
    return int(np.argmin(phi))


def build_halo_catalog(
    positions: np.ndarray,
    fof: FOFResult,
    box_size: float,
    particle_mass: float = 1.0,
    min_members: int = 10,
    seed: int = 0,
    keep_members: bool = False,
) -> HaloCatalog:
    """Reduce an FoF labeling to a halo catalog."""
    positions = np.asarray(positions, dtype=np.float64)
    check_positive(particle_mass, "particle_mass")
    if min_members < 2:
        raise DataError("min_members must be >= 2")
    sizes_all = fof.group_sizes()
    halo_ids = np.flatnonzero(sizes_all >= min_members)
    degrees = fof.degrees()
    rng = np.random.default_rng(seed)

    order = np.argsort(fof.labels, kind="stable")
    boundaries = np.searchsorted(fof.labels[order], np.arange(fof.n_groups + 1))

    sizes, centers, mcps, mbps, members = [], [], [], [], []
    for gid in halo_ids:
        idx = order[boundaries[gid] : boundaries[gid + 1]]
        pos = positions[idx]
        sizes.append(idx.size)
        centers.append(_periodic_centroid(pos, box_size))
        mcps.append(int(idx[np.argmax(degrees[idx])]))
        mbps.append(int(idx[_most_bound(pos, box_size, rng)]))
        if keep_members:
            members.append(idx)

    sizes_arr = np.array(sizes, dtype=np.int64)
    return HaloCatalog(
        sizes=sizes_arr,
        masses=sizes_arr * particle_mass,
        centers=np.array(centers).reshape(-1, 3),
        mcp=np.array(mcps, dtype=np.int64),
        mbp=np.array(mbps, dtype=np.int64),
        particle_mass=particle_mass,
        min_members=min_members,
        box_size=box_size,
        members=members,
    )


def find_halos(
    positions: np.ndarray,
    box_size: float,
    linking_length: float,
    particle_mass: float = 1.0,
    min_members: int = 10,
    **kwargs,
) -> HaloCatalog:
    """FoF + catalog reduction in one call (the paper's "halo finder")."""
    fof = friends_of_friends(positions, box_size, linking_length)
    return build_halo_catalog(
        positions, fof, box_size, particle_mass=particle_mass,
        min_members=min_members, **kwargs,
    )


@dataclass(frozen=True)
class MassFunction:
    """Halo counts in logarithmic mass bins (Fig. 6's black curve)."""

    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return np.sqrt(self.bin_edges[:-1] * self.bin_edges[1:])


def halo_mass_function(
    catalog: HaloCatalog,
    bin_edges: np.ndarray | None = None,
    nbins: int = 12,
) -> MassFunction:
    """Bin halo masses logarithmically."""
    if bin_edges is None:
        if catalog.n_halos == 0:
            raise AnalysisError("empty halo catalog and no bin edges supplied")
        lo = catalog.masses.min() * 0.999
        hi = catalog.masses.max() * 1.001
        bin_edges = np.geomspace(lo, hi, nbins + 1)
    counts, _ = np.histogram(catalog.masses, bins=bin_edges)
    return MassFunction(bin_edges=np.asarray(bin_edges, dtype=np.float64), counts=counts)


def halo_count_ratio(
    original: MassFunction, reconstructed: MassFunction
) -> np.ndarray:
    """Per-bin reconstructed/original halo-count ratio (Fig. 6 right axis).

    Bins where the original has no halos yield NaN.
    """
    if original.bin_edges.shape != reconstructed.bin_edges.shape or not np.allclose(
        original.bin_edges, reconstructed.bin_edges
    ):
        raise AnalysisError("mass functions use different bins")
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(
            original.counts > 0,
            reconstructed.counts / np.maximum(original.counts, 1),
            np.nan,
        )
