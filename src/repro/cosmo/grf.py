"""Gaussian random fields with a target power spectrum (FFT method).

Convention (shared with :mod:`repro.cosmo.power_spectrum` so that a
generated field *measures back* to its input spectrum):

    P(k) = V * <|delta_hat(k)|^2> / N^6,   delta_hat = fftn(delta)

Generation filters unit white noise in Fourier space:
``delta_hat = fftn(noise) * sqrt(P(k) * N^3 / V)``; since
``<|fftn(noise)|^2> = N^3`` the measured spectrum matches ``P`` in
expectation, and starting from real noise keeps the field exactly real.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_positive


def wavenumber_grid(n: int, box_size: float) -> np.ndarray:
    """|k| on the FFT grid of an ``n^3`` box with side ``box_size``."""
    check_positive(box_size, "box_size")
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box_size / n)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    return np.sqrt(kx**2 + ky**2 + kz**2)


def gaussian_random_field(
    n: int,
    box_size: float,
    spectrum: Callable[[np.ndarray], np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Real ``n^3`` field whose power spectrum follows ``spectrum``."""
    if n < 2:
        raise DataError("grid size must be >= 2")
    check_positive(box_size, "box_size")
    volume = box_size**3
    kmag = wavenumber_grid(n, box_size)
    pk = np.asarray(spectrum(kmag), dtype=np.float64)
    if np.any(pk < 0) or not np.all(np.isfinite(pk)):
        raise DataError("spectrum must be finite and nonnegative on the k grid")
    noise = rng.standard_normal((n, n, n))
    amp = np.sqrt(pk * n**3 / volume)
    field = np.fft.ifftn(np.fft.fftn(noise) * amp).real
    return field


def displacement_field(
    delta: np.ndarray, box_size: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zel'dovich displacement ``psi = -grad(inv_laplacian(delta))``.

    In Fourier space ``psi_hat_i = i * k_i / k^2 * delta_hat`` — the
    first-order Lagrangian displacement that moves particles off a uniform
    lattice into the clustered configuration described by ``delta``.
    """
    n = delta.shape[0]
    if delta.shape != (n, n, n):
        raise DataError("delta must be a cubic 3-D grid")
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box_size / n)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0  # avoid 0/0; DC displacement is zero anyway
    dhat = np.fft.fftn(delta)
    out = []
    for ki in (kx, ky, kz):
        psi_hat = 1j * ki / k2 * dhat
        psi_hat[0, 0, 0] = 0.0
        out.append(np.fft.ifftn(psi_hat).real)
    return out[0], out[1], out[2]
