"""Friends-of-Friends group finder (Davis et al. 1985) — the paper's halo
definition (Section III, Metric 3a).

Particles closer than a *linking length* are "friends"; transitive closure
of friendship defines groups (halos).  The implementation hashes particles
into a periodic cell grid no finer than the linking length, generates
candidate pairs from the 27-cell neighborhoods with fully vectorized
searchsorted/repeat index arithmetic, filters them by periodic minimum-
image distance, and labels connected components with scipy's union-find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import DataError
from repro.util.validation import check_positive

#: Half of the 26 neighbor offsets (strictly "positive" lexicographically)
#: — with the self cell, every unordered cell pair is visited exactly once.
_HALF_OFFSETS = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
]


@dataclass
class FOFResult:
    """Group labels plus the friendship graph edges.

    ``labels[i]`` is the group id of particle ``i`` (0..n_groups-1);
    ``edges`` is an ``(m, 2)`` array of friend pairs — kept because the
    Most Connected Particle definition needs friend degrees.
    """

    labels: np.ndarray
    n_groups: int
    edges: np.ndarray
    linking_length: float

    def group_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.n_groups)

    def degrees(self) -> np.ndarray:
        """Number of friends of each particle."""
        deg = np.zeros(self.labels.size, dtype=np.int64)
        if self.edges.size:
            deg += np.bincount(self.edges[:, 0], minlength=self.labels.size)
            deg += np.bincount(self.edges[:, 1], minlength=self.labels.size)
        return deg


def _candidate_pairs(
    sorted_cid: np.ndarray,
    order: np.ndarray,
    query_cid: np.ndarray,
    self_cell: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Pairs (i, j) where j lives in the queried cell of particle i."""
    n = query_cid.size
    start = np.searchsorted(sorted_cid, query_cid, side="left")
    end = np.searchsorted(sorted_cid, query_cid, side="right")
    counts = end - start
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    a = np.repeat(np.arange(n, dtype=np.int64), counts)
    offsets = np.repeat(start, counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    )
    b = order[offsets]
    if self_cell:
        keep = b > a  # dedupe unordered pairs and drop self-pairs
        a, b = a[keep], b[keep]
    return a, b


def friends_of_friends(
    positions: np.ndarray,
    box_size: float,
    linking_length: float,
    periodic: bool = True,
) -> FOFResult:
    """Run FoF over ``(N, 3)`` positions in a (periodic) cubic box."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise DataError("positions must have shape (N, 3)")
    check_positive(box_size, "box_size")
    check_positive(linking_length, "linking_length")
    if linking_length >= box_size / 3:
        raise DataError("linking length must be < box_size / 3")
    n = positions.shape[0]

    ncell = max(3, int(box_size // linking_length))
    pos = np.mod(positions, box_size) if periodic else positions
    cell = np.clip((pos / box_size * ncell).astype(np.int64), 0, ncell - 1)

    def ravel(c: np.ndarray) -> np.ndarray:
        return (c[:, 0] * ncell + c[:, 1]) * ncell + c[:, 2]

    cid = ravel(cell)
    order = np.argsort(cid, kind="stable")
    sorted_cid = cid[order]

    ll2 = linking_length**2
    edge_a: list[np.ndarray] = []
    edge_b: list[np.ndarray] = []

    def accept(a: np.ndarray, b: np.ndarray) -> None:
        if a.size == 0:
            return
        d = pos[a] - pos[b]
        if periodic:
            d -= box_size * np.rint(d / box_size)
        keep = np.einsum("ij,ij->i", d, d) <= ll2
        if keep.any():
            edge_a.append(a[keep])
            edge_b.append(b[keep])

    # Same-cell pairs.
    accept(*_candidate_pairs(sorted_cid, order, cid, self_cell=True))
    # Neighbor-cell pairs (each unordered cell pair once).
    for off in _HALF_OFFSETS:
        neighbor = cell + np.array(off, dtype=np.int64)
        if periodic:
            neighbor %= ncell
            query = ravel(neighbor)
        else:
            ok = np.all((neighbor >= 0) & (neighbor < ncell), axis=1)
            query = np.where(ok, ravel(np.clip(neighbor, 0, ncell - 1)), -1)
        accept(*_candidate_pairs(sorted_cid, order, query, self_cell=False))

    if edge_a:
        ea = np.concatenate(edge_a)
        eb = np.concatenate(edge_b)
    else:
        ea = eb = np.zeros(0, dtype=np.int64)

    graph = coo_matrix(
        (np.ones(ea.size, dtype=np.int8), (ea, eb)), shape=(n, n)
    )
    n_groups, labels = connected_components(graph, directed=False)
    return FOFResult(
        labels=labels.astype(np.int64),
        n_groups=int(n_groups),
        edges=np.stack([ea, eb], axis=1) if ea.size else np.zeros((0, 2), dtype=np.int64),
        linking_length=linking_length,
    )
