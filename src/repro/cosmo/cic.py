"""Cloud-in-cell (CIC) mass deposition onto a periodic mesh.

CIC is the standard particle-mesh assignment HACC's long-range solver and
every particle power-spectrum estimator use: each particle's mass is split
linearly over the 8 mesh cells surrounding it.  Fully vectorized via
``np.add.at`` over the 8 corner offsets.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_positive


def cic_deposit(
    positions: np.ndarray,
    grid_size: int,
    box_size: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Deposit particles onto a periodic ``grid_size^3`` density mesh.

    Parameters
    ----------
    positions:
        ``(N, 3)`` coordinates in ``[0, box_size)`` (values outside are
        wrapped periodically).
    weights:
        Optional per-particle masses (default 1).

    Returns
    -------
    The deposited mass grid (sums to total mass).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise DataError("positions must have shape (N, 3)")
    check_positive(box_size, "box_size")
    if grid_size < 2:
        raise DataError("grid_size must be >= 2")
    n = positions.shape[0]
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise DataError("weights must have shape (N,)")

    cell = positions / box_size * grid_size
    base = np.floor(cell).astype(np.int64)
    frac = cell - base

    grid = np.zeros((grid_size,) * 3, dtype=np.float64)
    for offset in itertools.product((0, 1), repeat=3):
        weight = w.copy()
        idx = np.empty((n, 3), dtype=np.int64)
        for d, o in enumerate(offset):
            weight *= frac[:, d] if o else (1.0 - frac[:, d])
            idx[:, d] = (base[:, d] + o) % grid_size
        np.add.at(grid, (idx[:, 0], idx[:, 1], idx[:, 2]), weight)
    return grid


def cic_gather(
    grid: np.ndarray,
    positions: np.ndarray,
    box_size: float,
) -> np.ndarray:
    """Trilinear (CIC) interpolation of a periodic grid to particle
    positions — the adjoint of :func:`cic_deposit`, used by the PM force
    solver to read mesh forces back at the particles."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 3 or len(set(grid.shape)) != 1:
        raise DataError("grid must be a cubic 3-D array")
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise DataError("positions must have shape (N, 3)")
    check_positive(box_size, "box_size")
    n = grid.shape[0]
    cell = np.mod(positions, box_size) / box_size * n
    base = np.floor(cell).astype(np.int64)
    frac = cell - base

    out = np.zeros(positions.shape[0])
    for offset in itertools.product((0, 1), repeat=3):
        weight = np.ones(positions.shape[0])
        idx = np.empty_like(base)
        for d, o in enumerate(offset):
            weight *= frac[:, d] if o else (1.0 - frac[:, d])
            idx[:, d] = (base[:, d] + o) % n
        out += weight * grid[idx[:, 0], idx[:, 1], idx[:, 2]]
    return out


def density_contrast(mass_grid: np.ndarray) -> np.ndarray:
    """``delta = rho / rho_mean - 1`` for a deposited mass grid."""
    mean = mass_grid.mean()
    if mean <= 0:
        raise DataError("mass grid has nonpositive mean")
    return mass_grid / mean - 1.0
