"""Time-evolving snapshot series.

The paper's introduction motivates error-bounded lossy compression as the
replacement for *decimation* — "stores one snapshot every other time step
during the simulation", losing the skipped states outright.  Comparing
the two requires a time axis, so this module generates a sequence of
Nyx-like snapshots sharing one realization of the initial Gaussian field,
evolved with a linear growth factor:

    delta(t) = D(t) * delta_0,     D(t) = exp(rate * t)  (matter-era-ish)

Density fields are the usual lognormal transform of delta(t); velocities
scale with dD/dt.  Consecutive snapshots are therefore *correlated* the
way real simulation outputs are, which is exactly what makes temporal
interpolation of decimated series plausible-but-lossy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmo.datasets import GridDataset
from repro.cosmo.grf import gaussian_random_field
from repro.cosmo.spectra import CosmoPowerSpectrum
from repro.errors import DataError


@dataclass
class SnapshotSeries:
    """An ordered sequence of grid snapshots at known times."""

    times: np.ndarray
    snapshots: list[GridDataset]

    def __post_init__(self) -> None:
        if len(self.snapshots) != self.times.size:
            raise DataError("times and snapshots must have equal length")
        if self.times.size < 2:
            raise DataError("a series needs at least two snapshots")
        if np.any(np.diff(self.times) <= 0):
            raise DataError("times must be strictly increasing")

    @property
    def n_snapshots(self) -> int:
        return len(self.snapshots)

    @property
    def field_names(self) -> list[str]:
        return sorted(self.snapshots[0].fields)

    def total_bytes(self) -> int:
        return sum(s.total_bytes() for s in self.snapshots)


def make_nyx_series(
    grid_size: int = 32,
    n_snapshots: int = 8,
    box_size: float = 50.0,
    seed: int = 11,
    sigma_final: float = 1.8,
    growth_rate: float = 0.25,
    velocity_sigma: float = 8e6,
) -> SnapshotSeries:
    """Generate a correlated time series of Nyx-like snapshots.

    ``sigma_final`` is the log-density standard deviation of the *last*
    snapshot; earlier ones are smoother by the growth factor.
    """
    if n_snapshots < 2:
        raise DataError("n_snapshots must be >= 2")
    rng = np.random.default_rng(seed)
    spec = CosmoPowerSpectrum()

    delta0 = gaussian_random_field(grid_size, box_size, spec, rng)
    delta0 /= max(delta0.std(), 1e-30)
    vel_seed = [
        gaussian_random_field(grid_size, box_size, spec.velocity_spectrum, rng)
        for _ in range(3)
    ]
    for v in vel_seed:
        v /= max(v.std(), 1e-30)

    times = np.arange(n_snapshots, dtype=np.float64)
    growth = np.exp(growth_rate * (times - times[-1]))  # D(t_final) = 1
    snapshots = []
    for t, d in zip(times, growth):
        sigma = sigma_final * d
        delta = delta0 * sigma
        log_rho = delta - 0.5 * sigma**2
        rho_dm = np.exp(log_rho)
        rho_b = np.exp(delta * 0.9 - 0.5 * (0.9 * sigma) ** 2) * 1.2
        temperature = np.clip(1e4 * (rho_b / rho_b.mean()) ** (2.0 / 3.0), 1e2, 1e7)
        dgrowth = growth_rate * d  # dD/dt up to constants
        fields = {
            "baryon_density": rho_b.astype(np.float32),
            "dark_matter_density": rho_dm.astype(np.float32),
            "temperature": temperature.astype(np.float32),
        }
        for name, v in zip(("x", "y", "z"), vel_seed):
            fields[f"velocity_{name}"] = (
                v * velocity_sigma * dgrowth / growth_rate
            ).astype(np.float32)
        snapshots.append(GridDataset(fields=fields, box_size=box_size, name=f"nyx_t{t:g}"))
    return SnapshotSeries(times=times, snapshots=snapshots)
