"""Dataset containers and the Table II metadata of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError


@dataclass(frozen=True)
class FieldSpec:
    """One row of Table II's field list: a name and its value range."""

    name: str
    value_range: tuple[float, float]

    def contains(self, data: np.ndarray, slack: float = 0.0) -> bool:
        lo, hi = self.value_range
        span = hi - lo
        return bool(
            data.min() >= lo - slack * span and data.max() <= hi + slack * span
        )


#: Table II — HACC: six 1-D arrays (position, velocity per axis).
HACC_TABLE_II: tuple[FieldSpec, ...] = (
    FieldSpec("x", (0.0, 256.0)),
    FieldSpec("y", (0.0, 256.0)),
    FieldSpec("z", (0.0, 256.0)),
    FieldSpec("vx", (-1e4, 1e4)),
    FieldSpec("vy", (-1e4, 1e4)),
    FieldSpec("vz", (-1e4, 1e4)),
)

#: Table II — Nyx: six 3-D arrays.
NYX_TABLE_II: tuple[FieldSpec, ...] = (
    FieldSpec("baryon_density", (0.0, 1e5)),
    FieldSpec("dark_matter_density", (0.0, 1e4)),
    FieldSpec("temperature", (1e2, 1e7)),
    FieldSpec("velocity_x", (-1e8, 1e8)),
    FieldSpec("velocity_y", (-1e8, 1e8)),
    FieldSpec("velocity_z", (-1e8, 1e8)),
)

#: Sizes of the paper's actual datasets, for scale documentation.
PAPER_HACC_ELEMENTS = 1_073_726_359
PAPER_NYX_GRID = 512


@dataclass
class ParticleDataset:
    """HACC-style snapshot: six 1-D float32 arrays plus box metadata."""

    fields: dict[str, np.ndarray]
    box_size: float
    name: str = "hacc"

    def __post_init__(self) -> None:
        sizes = {v.size for v in self.fields.values()}
        if len(sizes) != 1:
            raise DataError("all particle fields must have equal length")
        for key, v in self.fields.items():
            if v.ndim != 1:
                raise DataError(f"particle field {key!r} must be 1-D")

    @property
    def n_particles(self) -> int:
        return next(iter(self.fields.values())).size

    @property
    def positions(self) -> np.ndarray:
        """``(N, 3)`` position matrix."""
        return np.stack([self.fields[k] for k in ("x", "y", "z")], axis=1)

    @property
    def velocities(self) -> np.ndarray:
        return np.stack([self.fields[k] for k in ("vx", "vy", "vz")], axis=1)

    def with_fields(self, new_fields: dict[str, np.ndarray]) -> "ParticleDataset":
        """Copy with some fields replaced (e.g. by reconstructions)."""
        merged = dict(self.fields)
        merged.update(new_fields)
        return ParticleDataset(fields=merged, box_size=self.box_size, name=self.name)

    def total_bytes(self) -> int:
        return sum(v.nbytes for v in self.fields.values())


@dataclass
class GridDataset:
    """Nyx-style snapshot: six 3-D float32 arrays plus box metadata."""

    fields: dict[str, np.ndarray]
    box_size: float
    name: str = "nyx"

    def __post_init__(self) -> None:
        shapes = {v.shape for v in self.fields.values()}
        if len(shapes) != 1:
            raise DataError("all grid fields must share one shape")
        shape = shapes.pop()
        if len(shape) != 3:
            raise DataError("grid fields must be 3-D")

    @property
    def grid_size(self) -> int:
        return next(iter(self.fields.values())).shape[0]

    def velocity_magnitude(self) -> np.ndarray:
        """``sqrt(vx^2 + vy^2 + vz^2)`` — one of Fig. 5's composite spectra."""
        vx = self.fields["velocity_x"].astype(np.float64)
        vy = self.fields["velocity_y"].astype(np.float64)
        vz = self.fields["velocity_z"].astype(np.float64)
        return np.sqrt(vx**2 + vy**2 + vz**2)

    def overall_density(self) -> np.ndarray:
        """Baryon + dark matter density (Fig. 5's composite density)."""
        return self.fields["baryon_density"].astype(np.float64) + self.fields[
            "dark_matter_density"
        ].astype(np.float64)

    def with_fields(self, new_fields: dict[str, np.ndarray]) -> "GridDataset":
        merged = dict(self.fields)
        merged.update(new_fields)
        return GridDataset(fields=merged, box_size=self.box_size, name=self.name)

    def total_bytes(self) -> int:
        return sum(v.nbytes for v in self.fields.values())


def table_ii_rows() -> list[dict[str, str]]:
    """Render Table II ("Details of HACC and Nyx Dataset") as records."""
    rows = []
    for spec in HACC_TABLE_II:
        rows.append(
            {
                "dataset": "HACC",
                "dimension": f"{PAPER_HACC_ELEMENTS:,}",
                "field": spec.name,
                "value_range": f"({spec.value_range[0]:g}, {spec.value_range[1]:g})",
            }
        )
    for spec in NYX_TABLE_II:
        rows.append(
            {
                "dataset": "Nyx",
                "dimension": f"{PAPER_NYX_GRID}^3",
                "field": spec.name,
                "value_range": f"({spec.value_range[0]:g}, {spec.value_range[1]:g})",
            }
        )
    return rows
