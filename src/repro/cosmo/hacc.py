"""Synthetic HACC-style particle snapshot.

HACC's snapshots store one float32 array per particle attribute: positions
(x, y, z) in a (0, 256) Mpc/h box and velocities (vx, vy, vz) up to ~1e4
km/s (Table II).  A redshift-zero snapshot is *virialized*: much of the
mass sits in collapsed halos that first-order (Zel'dovich) dynamics cannot
produce.  The generator therefore combines two components:

* a **Zel'dovich background** — a uniform lattice displaced along the
  first-order Lagrangian displacement field of a Gaussian density contrast
  with a cosmological power spectrum.  This carries the correct
  large-scale P(k).
* a **halo population** — halo masses drawn from a power-law mass
  function ``dn/dM ~ M^-2`` (the low-mass FoF regime), centers placed
  preferentially in overdense regions of the same Gaussian field, and
  members distributed with a singular-isothermal ``rho ~ r^-2`` profile
  at a fixed overdensity, so Friends-of-Friends at the customary
  ``b = 0.2`` linking length recovers them.  Members get virial velocity
  dispersions on top of the local bulk flow.

This is the closest laptop-scale stand-in for the paper's 1.07e9-particle
snapshot: compression-induced position error inflates the smallest halos'
internal separations past the linking length first, reproducing Fig. 6's
mass-dependent halo-count degradation.
"""

from __future__ import annotations

import numpy as np

from repro.cosmo.datasets import ParticleDataset
from repro.cosmo.grf import displacement_field, gaussian_random_field
from repro.cosmo.spectra import CosmoPowerSpectrum
from repro.errors import DataError


def _sample_halo_masses(
    total: int, mmin: int, mmax: int, rng: np.random.Generator
) -> np.ndarray:
    """Halo member counts from dn/dM ~ M^-2 until ``total`` is exhausted."""
    masses = []
    budget = total
    # Inverse-CDF sampling of a truncated Pareto with alpha = 1 (dn/dM ~ M^-2).
    while budget >= mmin:
        u = rng.random()
        m = int(mmin * mmax / (mmax - u * (mmax - mmin)))
        m = min(m, budget)
        if m < mmin:
            break
        masses.append(m)
        budget -= m
    return np.array(masses, dtype=np.int64)


def make_hacc_dataset(
    particles_per_side: int = 48,
    box_size: float = 256.0,
    seed: int = 7,
    halo_fraction: float = 0.35,
    min_halo_members: int = 16,
    max_halo_members: int | None = None,
    overdensity: float = 200.0,
    growth_amplitude: float = 1.0,
    velocity_scale: float = 250.0,
    virial_velocity: float = 300.0,
    max_velocity: float = 1e4,
) -> ParticleDataset:
    """Generate a HACC-like particle snapshot (see module docstring).

    Parameters
    ----------
    particles_per_side:
        Background lattice side; total particles = side^3 (the paper's
        snapshot has 1.07e9; default scaled down to 48^3 = 110,592).
    halo_fraction:
        Fraction of all particles placed inside halos.
    overdensity:
        Mean density contrast of a halo relative to the cosmic mean;
        200 is the conventional virial overdensity and guarantees
        detection at the FoF ``b = 0.2`` linking length.
    growth_amplitude:
        RMS Zel'dovich displacement of background particles, in mean
        interparticle spacings.
    """
    n = particles_per_side
    if n < 4:
        raise DataError("particles_per_side must be >= 4")
    if not 0.0 <= halo_fraction < 0.9:
        raise DataError("halo_fraction must be in [0, 0.9)")
    rng = np.random.default_rng(seed)
    spec = CosmoPowerSpectrum()
    n_total = n**3
    spacing = box_size / n
    mean_density = n_total / box_size**3

    # Density contrast and its displacement field on the lattice grid.
    delta = gaussian_random_field(n, box_size, spec, rng)
    delta /= max(delta.std(), 1e-30)
    psi = displacement_field(delta, box_size)
    psi_sigma = max(float(np.sqrt(np.mean([p.var() for p in psi]))), 1e-30)
    scale = growth_amplitude * spacing / psi_sigma

    # -- halo population -----------------------------------------------------
    n_halo_particles = int(halo_fraction * n_total)
    mmax = max_halo_members or max(min_halo_members * 2, n_total // 50)
    halo_masses = _sample_halo_masses(n_halo_particles, min_halo_members, mmax, rng)
    n_in_halos = int(halo_masses.sum())
    n_background = n_total - n_in_halos

    # Halo centers: lattice sites weighted by exp(2*delta) (peaks preferred).
    weights = np.exp(2.0 * delta.ravel())
    weights /= weights.sum()
    center_sites = rng.choice(n_total, size=halo_masses.size, p=weights, replace=False)
    site_idx = np.unravel_index(center_sites, (n, n, n))
    centers = (np.stack(site_idx, axis=1) + 0.5) * spacing

    halo_pos_parts: list[np.ndarray] = []
    halo_vel_parts: list[np.ndarray] = []
    for h, m in enumerate(halo_masses):
        # Virial radius from the overdensity definition.
        r_vir = (3.0 * m / (4.0 * np.pi * overdensity * mean_density)) ** (1.0 / 3.0)
        # Isothermal profile: M(<r) ~ r  =>  r = u * r_vir.
        r = rng.random(m) * r_vir
        direction = rng.standard_normal((m, 3))
        direction /= np.maximum(np.linalg.norm(direction, axis=1, keepdims=True), 1e-30)
        pos = centers[h] + r[:, None] * direction
        halo_pos_parts.append(pos)
        sigma_v = virial_velocity * (m / 100.0) ** (1.0 / 3.0)
        bulk = np.array(
            [p[site_idx[0][h], site_idx[1][h], site_idx[2][h]] for p in psi]
        ) * scale * velocity_scale
        vel = bulk[None, :] + rng.standard_normal((m, 3)) * sigma_v
        halo_vel_parts.append(vel)

    # -- Zel'dovich background ------------------------------------------------
    lattice_1d = (np.arange(n) + 0.5) * spacing
    lx, ly, lz = np.meshgrid(lattice_1d, lattice_1d, lattice_1d, indexing="ij")
    all_sites = rng.permutation(n_total)[:n_background]
    bg_pos = np.empty((n_background, 3))
    bg_vel = np.empty((n_background, 3))
    for d, (lat, p) in enumerate(zip((lx, ly, lz), psi)):
        disp = (p.ravel()[all_sites]) * scale
        bg_pos[:, d] = lat.ravel()[all_sites] + disp + rng.standard_normal(
            n_background
        ) * 0.05 * spacing
        bg_vel[:, d] = velocity_scale * disp + rng.standard_normal(n_background) * 30.0

    positions = np.vstack([*halo_pos_parts, bg_pos]) if halo_pos_parts else bg_pos
    velocities = np.vstack([*halo_vel_parts, bg_vel]) if halo_vel_parts else bg_vel
    positions = np.mod(positions, box_size)
    velocities = np.clip(velocities, -max_velocity, max_velocity)
    # Shuffle so particle order carries no halo information (as in a real
    # snapshot written by spatial MPI decomposition, order != membership).
    perm = rng.permutation(positions.shape[0])
    positions = positions[perm]
    velocities = velocities[perm]

    fields = {
        "x": positions[:, 0].astype(np.float32),
        "y": positions[:, 1].astype(np.float32),
        "z": positions[:, 2].astype(np.float32),
        "vx": velocities[:, 0].astype(np.float32),
        "vy": velocities[:, 1].astype(np.float32),
        "vz": velocities[:, 2].astype(np.float32),
    }
    return ParticleDataset(fields=fields, box_size=box_size, name="hacc")
