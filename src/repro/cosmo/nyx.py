"""Synthetic Nyx-style grid snapshot.

Nyx evolves baryonic gas on a Eulerian mesh with dark matter particles
deposited alongside; its snapshot fields (Table II) are baryon density,
dark matter density, temperature, and three velocity components.  The
generator mimics the statistical character of each:

* densities are *lognormal* transforms of a Gaussian random field with a
  cosmological spectrum — positively skewed, huge dynamic range, smooth in
  the log (this is what makes SZ's ABS mode struggle on them at the same
  PSNR, exactly the paper's Fig. 4a discussion);
* baryon density is a smoothed version of the dark matter field
  (pressure smoothing) with a higher amplitude cap (Table II: 1e5 vs 1e4);
* temperature follows the density adiabatically (T ~ rho^(gamma-1)) with
  a lognormal shock-heating scatter, spanning (1e2, 1e7) K;
* velocities are Gaussian with the linear-theory ``P(k)/k^2`` spectrum,
  scaled to the ~1e7 cm/s regime of Table II's (-1e8, 1e8) range.
"""

from __future__ import annotations

import numpy as np

from repro.cosmo.datasets import GridDataset
from repro.cosmo.grf import gaussian_random_field
from repro.cosmo.spectra import CosmoPowerSpectrum
from repro.errors import DataError


def _smooth(field: np.ndarray, box_size: float, scale: float) -> np.ndarray:
    """Gaussian smoothing in Fourier space with comoving radius ``scale``."""
    n = field.shape[0]
    k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=box_size / n)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    kernel = np.exp(-0.5 * k2 * scale**2)
    return np.fft.ifftn(np.fft.fftn(field) * kernel).real


def make_nyx_dataset(
    grid_size: int = 64,
    box_size: float = 50.0,
    seed: int = 42,
    sigma_delta: float = 2.0,
    mean_dm_density: float = 1.0,
    temperature_floor: float = 1e2,
    temperature_cap: float = 1e7,
    velocity_sigma: float = 8e6,
) -> GridDataset:
    """Generate a Nyx-like six-field grid snapshot.

    Parameters
    ----------
    grid_size:
        Cells per side (the paper's dataset is 512; default scaled down).
    box_size:
        Comoving box side in Mpc/h.
    sigma_delta:
        Standard deviation of the log-density Gaussian; controls how
        heavy the density tails are (~2 reaches the Table II maxima on a
        512^3 grid).
    """
    if grid_size < 8:
        raise DataError("grid_size must be >= 8")
    rng = np.random.default_rng(seed)
    spec = CosmoPowerSpectrum()

    delta = gaussian_random_field(grid_size, box_size, spec, rng)
    delta *= sigma_delta / max(delta.std(), 1e-30)

    # Lognormal density: positive, skewed, mean fixed by the -var/2 shift.
    log_rho = delta - 0.5 * sigma_delta**2
    rho_dm = mean_dm_density * np.exp(log_rho)

    # Baryons: pressure-smoothed DM field, slightly different tail.
    delta_b = _smooth(delta, box_size, scale=box_size / grid_size * 2.0)
    delta_b *= sigma_delta / max(delta_b.std(), 1e-30)
    rho_b = mean_dm_density * np.exp(delta_b - 0.5 * sigma_delta**2) * 1.2

    # Adiabatic temperature with shock-heating scatter.
    gamma = 5.0 / 3.0
    t0 = 1.0e4
    scatter = np.exp(0.8 * gaussian_random_field(grid_size, box_size, spec, rng)
                     / max(delta.std(), 1e-30) * sigma_delta * 0.3)
    temperature = t0 * (rho_b / rho_b.mean()) ** (gamma - 1.0) * scatter
    temperature = np.clip(temperature, temperature_floor, temperature_cap)

    velocities = {}
    for axis in ("x", "y", "z"):
        v = gaussian_random_field(grid_size, box_size, spec.velocity_spectrum, rng)
        v *= velocity_sigma / max(v.std(), 1e-30)
        velocities[f"velocity_{axis}"] = v.astype(np.float32)

    fields = {
        "baryon_density": rho_b.astype(np.float32),
        "dark_matter_density": rho_dm.astype(np.float32),
        "temperature": temperature.astype(np.float32),
        **velocities,
    }
    return GridDataset(fields=fields, box_size=box_size, name="nyx")
