"""Distributed trace context: W3C-traceparent-style propagation.

A :class:`TraceContext` names one position in one distributed trace —
``trace_id`` (the whole request tree, 32 hex chars), ``span_id`` (this
position, 16 hex chars), and ``parent_id`` (where it hangs).  The active
context lives in a :mod:`contextvars` variable, so it follows the
logical flow of control: across ``await`` boundaries inside one asyncio
task, into threads that opt in via :func:`use`, and across *process*
boundaries by serializing to a ``traceparent`` string
(``00-<trace_id>-<span_id>-01``, the W3C Trace Context header format)
carried in an MSG1 header field.

The tracer integrates automatically: when a context is active,
:meth:`repro.telemetry.spans.Tracer.span` stamps each span with the
trace id, mints the span a fresh ctx id, and advances the contextvar for
the span's duration — so the local nesting and the cross-process tree
stay consistent without the instrumented code knowing about either.

A second contextvar carries the server-assigned **request id** so the
JSON log formatter (:mod:`repro.telemetry.logs`) can stamp every record
emitted while a request is being served.

Everything here is pure stdlib and allocation-light; with no context
active and telemetry off, the service client skips it entirely.
"""

from __future__ import annotations

import contextvars
import re
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "TRACE_FIELD",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "current",
    "use",
    "start_trace",
    "current_traceparent",
    "inject",
    "extract",
    "current_request_id",
    "use_request_id",
]

#: MSG1 header field carrying the serialized context (optional; absent
#: on old clients and ignored by old servers — see docs/SERVICE.md).
TRACE_FIELD = "trace"

#: ``version-trace_id-span_id-flags`` per the W3C Trace Context spec.
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh random 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace (immutable, picklable)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self) -> "TraceContext":
        """A fresh context one level below this one (new span id)."""
        return TraceContext(self.trace_id, new_span_id(), self.span_id)

    def to_traceparent(self) -> str:
        """Serialize as a W3C ``traceparent`` value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, value: Any) -> "TraceContext | None":
        """Parse a ``traceparent`` string; ``None`` on anything malformed.

        Never raises — a hostile or stale peer must not be able to break
        request handling by sending garbage trace headers.
        """
        if not isinstance(value, str):
            return None
        match = _TRACEPARENT_RE.match(value.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, _ = match.groups()
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None  # all-zero ids are invalid per the spec
        return cls(trace_id=trace_id, span_id=span_id)


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)
_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def current() -> TraceContext | None:
    """The active trace context, if any."""
    return _current.get()


@contextmanager
def use(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Activate ``ctx`` for the block (``None`` is a no-op passthrough)."""
    if ctx is None:
        yield current()
        return
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


@contextmanager
def start_trace() -> Iterator[TraceContext]:
    """Activate a fresh root context — the start of a new trace.

    If a context is already active it is reused (nested ``start_trace``
    does not fork a second trace), so callers can wrap liberally.
    """
    existing = current()
    if existing is not None:
        yield existing
        return
    root = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
    token = _current.set(root)
    try:
        yield root
    finally:
        _current.reset(token)


def current_traceparent() -> str | None:
    """The active context serialized for the wire (``None`` if inactive)."""
    ctx = current()
    return None if ctx is None else ctx.to_traceparent()


def inject(header: dict[str, Any]) -> dict[str, Any]:
    """Copy ``header`` with the active context added under ``trace``.

    With no active context the header is returned unchanged (and
    unchanged means *uncopied* — the fast path allocates nothing).
    """
    tp = current_traceparent()
    if tp is None:
        return header
    return {**header, TRACE_FIELD: tp}


def extract(header: dict[str, Any]) -> TraceContext | None:
    """The remote context a request header carries, if any (never raises)."""
    return TraceContext.from_traceparent(header.get(TRACE_FIELD))


# -- request ids (structured logging) ---------------------------------------


def current_request_id() -> str | None:
    """The request id assigned by the serving layer, if inside one."""
    return _request_id.get()


@contextmanager
def use_request_id(request_id: str | None) -> Iterator[None]:
    """Stamp log records emitted in this block with ``request_id``."""
    if request_id is None:
        yield
        return
    token = _request_id.set(str(request_id))
    try:
        yield
    finally:
        _request_id.reset(token)
