"""Telemetry command line: ``python -m repro.telemetry report <trace>``.

Subcommands:

* ``report <trace> [--filter SUBSTR]`` — per-stage time/throughput table
  for a JSONL or Chrome-format trace.
* ``convert <trace> -o out.json`` — rewrite a JSONL trace as a Chrome
  trace-event file loadable in chrome://tracing / Perfetto.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.telemetry.export import load_trace, write_chrome
from repro.telemetry.report import report_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect repro telemetry traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="summarize a trace per stage")
    p_report.add_argument("trace", help="JSONL or Chrome trace file")
    p_report.add_argument("--filter", default=None,
                          help="keep only span names containing this substring")

    p_convert = sub.add_parser("convert", help="JSONL trace -> Chrome trace JSON")
    p_convert.add_argument("trace", help="input trace file")
    p_convert.add_argument("-o", "--output", required=True,
                           help="output Chrome trace-event JSON path")

    args = parser.parse_args(argv)
    try:
        if args.command == "report":
            print(report_file(args.trace, name_filter=args.filter))
        else:
            events = load_trace(args.trace)
            write_chrome(Path(args.output), events)
            print(f"wrote {args.output} ({len(events)} events)")
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
