"""Telemetry command line: ``python -m repro.telemetry report <trace>``.

Subcommands:

* ``report <trace> [--filter SUBSTR]`` — per-stage time/throughput table
  for a JSONL or Chrome-format trace.
* ``convert <trace> -o out.json`` — rewrite a JSONL trace as a Chrome
  trace-event file loadable in chrome://tracing / Perfetto.
* ``top [--host H] [--port P] [--interval S] [--once]`` — live dashboard
  over a running compression daemon (qps, queue depth, latency
  percentiles, cache hit rate, hottest stages by self-time).
* ``serve-metrics [--host H] [--port P] [--listen-host H] [--listen-port P]``
  — stdlib HTTP endpoint re-exposing the daemon's METRICS op at
  ``/metrics`` for a Prometheus scrape job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.telemetry.export import load_trace, write_chrome
from repro.telemetry.report import report_file


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval_s=args.interval,
        once=args.once,
    )


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.telemetry.exposition import serve_metrics

    def fetch() -> str:
        # One short-lived client per scrape: scrapes are seconds apart
        # and a dead daemon then fails the scrape, not the exporter.
        with ServiceClient(host=args.host, port=args.port) as client:
            return client.metrics_text()

    def announce(port: int) -> None:
        print(
            f"serving http://{args.listen_host}:{port}/metrics "
            f"(daemon {args.host}:{args.port})",
            flush=True,
        )

    try:
        serve_metrics(
            fetch, host=args.listen_host, port=args.listen_port,
            ready=announce,
        )
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.service.client import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect repro telemetry traces and live services.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="summarize a trace per stage")
    p_report.add_argument("trace", help="JSONL or Chrome trace file")
    p_report.add_argument("--filter", default=None,
                          help="keep only span names containing this substring")

    p_convert = sub.add_parser("convert", help="JSONL trace -> Chrome trace JSON")
    p_convert.add_argument("trace", help="input trace file")
    p_convert.add_argument("-o", "--output", required=True,
                           help="output Chrome trace-event JSON path")

    p_top = sub.add_parser("top", help="live dashboard over a daemon")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval in seconds (default 1)")
    p_top.add_argument("--once", action="store_true",
                       help="print one frame and exit (no screen clearing)")
    p_top.set_defaults(fn=_cmd_top)

    p_serve = sub.add_parser(
        "serve-metrics", help="HTTP /metrics endpoint proxying a daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="daemon host to scrape")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="daemon port to scrape")
    p_serve.add_argument("--listen-host", default="127.0.0.1")
    p_serve.add_argument("--listen-port", type=int, default=9464)
    p_serve.set_defaults(fn=_cmd_serve_metrics)

    args = parser.parse_args(argv)
    try:
        if args.command == "report":
            print(report_file(args.trace, name_filter=args.filter))
        elif args.command == "convert":
            events = load_trace(args.trace)
            write_chrome(Path(args.output), events)
            print(f"wrote {args.output} ({len(events)} events)")
        else:
            return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
