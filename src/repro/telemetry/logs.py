"""Request-scoped structured logging: one JSON object per log record.

:class:`JsonLogFormatter` renders stdlib ``logging`` records as compact
JSON lines and — the point of this module — injects the ambient
distributed-trace identity from :mod:`repro.telemetry.context`: records
emitted while a request is being served carry that request's
``trace_id``, ``span_id``, and server-assigned ``request_id``, so a
daemon's log stream joins against its trace/metric streams on the same
keys (``grep`` a trace id across all three).

Nothing here changes what is logged or when; it is a formatter, wired
in by ``--log-json`` on the service/foresight CLIs (or by hand)::

    handler.setFormatter(JsonLogFormatter())

Output schema (keys absent rather than null when unknown)::

    {"ts": 1723190400.123, "level": "INFO", "logger": "repro.service",
     "message": "...", "trace_id": "...", "span_id": "...",
     "request_id": "17", "exc": "Traceback (most recent call last): ..."}
"""

from __future__ import annotations

import json
import logging
from typing import Any

from repro.telemetry import context as trace_context

__all__ = ["JsonLogFormatter"]


class JsonLogFormatter(logging.Formatter):
    """Format records as JSON lines stamped with the active trace context."""

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        ctx = trace_context.current()
        if ctx is not None:
            out["trace_id"] = ctx.trace_id
            out["span_id"] = ctx.span_id
        request_id = trace_context.current_request_id()
        if request_id is not None:
            out["request_id"] = request_id
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        elif record.exc_text:
            out["exc"] = record.exc_text
        # default=repr: a log call with a non-serializable extra must
        # degrade, never raise inside the logging machinery.
        return json.dumps(out, default=repr, separators=(",", ":"))
