"""Process-level resource probes (peak RSS) for the telemetry gauges.

The streaming data plane's whole point is a bounded working set; the
``process.peak_rss_bytes`` gauge is how a run proves it.  Linux exposes
the high-water mark in ``/proc/self/status`` (``VmHWM``); elsewhere we
fall back to ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux,
bytes on macOS).
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_bytes", "current_rss_bytes"]


def _proc_status_kib(key: str) -> int | None:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(key + ":"):
                    return int(line.split()[1])  # value is in kB
    except OSError:
        return None
    return None


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    kib = _proc_status_kib("VmHWM")
    if kib is not None:
        return kib * 1024
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(maxrss) if sys.platform == "darwin" else int(maxrss) * 1024


def current_rss_bytes() -> int:
    """Current resident set size of this process, in bytes (0 if unknown)."""
    kib = _proc_status_kib("VmRSS")
    return kib * 1024 if kib is not None else 0
