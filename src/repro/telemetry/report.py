"""Trace summarizer: per-stage wall time and throughput table.

Aggregates a trace (JSONL or Chrome format, see
:mod:`repro.telemetry.export`) by span name and renders the table the
paper's Fig. 7/8 discussion is built on: how long each stage took, how
often it ran, and the effective MB/s where spans carry a ``bytes``
attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.export import load_trace

__all__ = ["StageSummary", "summarize", "render_report", "report_file"]

_MB = 1e6


@dataclass
class StageSummary:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    min_seconds: float
    max_seconds: float
    total_bytes: int
    errors: int

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def mb_per_s(self) -> float | None:
        """Throughput over the stage's own wall time (None without bytes)."""
        if not self.total_bytes or self.total_seconds <= 0:
            return None
        return self.total_bytes / _MB / self.total_seconds


def summarize(spans: Iterable[dict[str, Any]]) -> list[StageSummary]:
    """Group span dicts by name; ordered by total time, largest first."""
    acc: dict[str, StageSummary] = {}
    for sp in spans:
        name = sp.get("name", "?")
        dur = float(sp.get("duration") or 0.0)
        attrs = sp.get("attrs") or {}
        nbytes = attrs.get("bytes", 0)
        nbytes = int(nbytes) if isinstance(nbytes, (int, float)) else 0
        err = 1 if sp.get("status", "ok") != "ok" else 0
        cur = acc.get(name)
        if cur is None:
            acc[name] = StageSummary(
                name=name, count=1, total_seconds=dur, min_seconds=dur,
                max_seconds=dur, total_bytes=nbytes, errors=err,
            )
        else:
            cur.count += 1
            cur.total_seconds += dur
            cur.min_seconds = min(cur.min_seconds, dur)
            cur.max_seconds = max(cur.max_seconds, dur)
            cur.total_bytes += nbytes
            cur.errors += err
    return sorted(acc.values(), key=lambda s: -s.total_seconds)


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"


def render_report(summaries: list[StageSummary], title: str | None = None) -> str:
    """Fixed-width per-stage table (time, share, throughput)."""
    headers = ["stage", "count", "total", "mean", "share", "MB", "MB/s", "errors"]
    grand_total = sum(s.total_seconds for s in summaries) or 1.0
    rows = []
    for s in summaries:
        mbps = s.mb_per_s
        rows.append([
            s.name,
            str(s.count),
            _fmt_seconds(s.total_seconds),
            _fmt_seconds(s.mean_seconds),
            f"{100.0 * s.total_seconds / grand_total:.1f}%",
            f"{s.total_bytes / _MB:.2f}" if s.total_bytes else "-",
            f"{mbps:.2f}" if mbps is not None else "-",
            str(s.errors) if s.errors else "-",
        ])
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    if not rows:
        lines.append("(trace contains no spans)")
    return "\n".join(lines)


def report_file(path: str | Path, name_filter: str | None = None) -> str:
    """Load ``path`` and render its per-stage summary table.

    ``name_filter`` keeps only span names containing the substring
    (e.g. ``"sz."`` to look at one codec's pipeline).
    """
    spans = load_trace(path)
    if name_filter:
        spans = [s for s in spans if name_filter in s.get("name", "")]
    summaries = summarize(spans)
    nspans = sum(s.count for s in summaries)
    title = f"{path} — {nspans} spans, {len(summaries)} stages"
    return render_report(summaries, title=title)
