"""Trace export/import: JSONL span records and Chrome trace-event JSON.

Two on-disk formats, one logical schema:

* **JSONL** — one :meth:`Span.to_dict` object per line, durations in
  seconds.  Greppable, streamable, the format ``repro.telemetry report``
  reads natively.
* **Chrome trace-event** — ``{"traceEvents": [...]}`` with complete
  ("ph": "X") events in microseconds, loadable in ``chrome://tracing`` /
  Perfetto.  The :mod:`repro.gpu` simulated timelines emit the same event
  shape, so measured Python spans and modeled Fig. 7 GPU stages can be
  concatenated into a single viewable timeline.

Both loaders normalize back to the JSONL span schema, so the reporter
does not care which file it was handed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import DataError
from repro.telemetry.spans import Span

__all__ = [
    "spans_to_jsonl",
    "spans_to_chrome",
    "chrome_event",
    "write_jsonl",
    "write_chrome",
    "load_trace",
]


def spans_to_jsonl(spans: Iterable[Span | dict[str, Any]]) -> str:
    """Serialize spans (or pre-built span dicts) to JSON-lines text."""
    lines = []
    for sp in spans:
        record = sp.to_dict() if isinstance(sp, Span) else sp
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_event(
    name: str,
    start_s: float,
    duration_s: float,
    pid: int = 0,
    tid: int = 0,
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One complete ("X") Chrome trace event; timestamps in microseconds."""
    return {
        "name": name,
        "ph": "X",
        "ts": start_s * 1e6,
        "dur": duration_s * 1e6,
        "pid": pid,
        "tid": tid,
        "args": dict(args or {}),
    }


def spans_to_chrome(
    spans: Iterable[Span | dict[str, Any]],
    extra_events: Sequence[dict[str, Any]] = (),
) -> dict[str, Any]:
    """Build a Chrome trace-event document from spans.

    ``extra_events`` lets callers merge already-built events (e.g.
    :meth:`repro.gpu.runtime.GPUCompressionRun.trace_events`) into the
    same timeline.
    """
    events = []
    for sp in spans:
        record = sp.to_dict() if isinstance(sp, Span) else sp
        args = dict(record.get("attrs") or {})
        args["span_id"] = record.get("span_id")
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("status", "ok") != "ok":
            args["status"] = record["status"]
        if record.get("trace_id") is not None:
            args["trace_id"] = record["trace_id"]
            args["ctx_id"] = record.get("ctx_id")
            args["ctx_parent_id"] = record.get("ctx_parent_id")
        events.append(
            chrome_event(
                record["name"],
                float(record.get("start") or 0.0),
                float(record.get("duration") or 0.0),
                tid=int(record.get("thread_id") or 0),
                args=args,
            )
        )
    events.extend(extra_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_jsonl(path: str | Path, spans: Iterable[Span | dict[str, Any]]) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def write_chrome(
    path: str | Path,
    spans: Iterable[Span | dict[str, Any]],
    extra_events: Sequence[dict[str, Any]] = (),
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome(spans, extra_events), sort_keys=True))
    return path


def _normalize_chrome_events(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    out = []
    for ev in events:
        if ev.get("ph", "X") != "X":
            continue  # only complete events carry durations
        args = dict(ev.get("args") or {})
        out.append(
            {
                "name": ev.get("name", "?"),
                "span_id": args.pop("span_id", None),
                "parent_id": args.pop("parent_id", None),
                "thread_id": ev.get("tid", 0),
                "start": float(ev.get("ts", 0.0)) / 1e6,
                "end": (float(ev.get("ts", 0.0)) + float(ev.get("dur", 0.0))) / 1e6,
                "duration": float(ev.get("dur", 0.0)) / 1e6,
                "status": args.pop("status", "ok"),
                "attrs": args,
            }
        )
    return out


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL or Chrome-format trace into span dicts.

    Format is sniffed from the content, not the extension: a JSON document
    with ``traceEvents`` (or a bare JSON array of events) is Chrome
    format; anything else is treated as JSON-lines.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "traceEvents" in doc:
            return _normalize_chrome_events(doc["traceEvents"])
        if isinstance(doc, list):
            return _normalize_chrome_events(doc)
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DataError(f"{path}:{lineno}: not valid trace JSONL: {exc}") from exc
        record.setdefault("attrs", {})
        record.setdefault("duration",
                          (record.get("end") or 0.0) - (record.get("start") or 0.0))
        spans.append(record)
    return spans
