"""Structured tracing: nested spans with a thread-safe tracer.

A :class:`Span` is one timed region of work (a compression stage, a
CBench cell, a per-rank compress).  Spans nest: each thread keeps its own
stack, so concurrent ranks in :mod:`repro.parallel.compression` produce
independent, correctly-parented subtrees instead of interleaving.

Two entry points::

    with tracer.span("sz.huffman", bytes=n):   # context manager
        ...

    @tracer.trace("cbench.run_one")            # decorator
    def run_one(...): ...

Timing uses :func:`time.perf_counter` (monotonic, the resolution the
paper's per-stage breakdowns need); wall-clock epochs never enter a
duration.  Finished spans accumulate on the tracer and are exported by
:mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start: float  # perf_counter seconds, relative to the tracer epoch
    end: float | None = None
    status: str = "ok"  # "ok" or "error"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready flat record (the JSONL line schema)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (``duration`` is derived, ignored)."""
        return cls(
            name=raw["name"],
            span_id=raw["span_id"],
            parent_id=raw.get("parent_id"),
            thread_id=raw.get("thread_id", 0),
            start=raw["start"],
            end=raw.get("end"),
            status=raw.get("status", "ok"),
            attrs=dict(raw.get("attrs", {})),
        )


class Tracer:
    """Thread-safe producer of nested :class:`Span` trees.

    The per-thread span stack lives in a ``threading.local``; the finished
    span list is guarded by a lock.  Span ids are globally unique within
    the tracer so parent/child edges survive export and merging.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- span production ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; exceptions mark it ``status="error"`` and
        propagate, with the parent span restored either way."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start=self._now(),
            attrs=dict(attrs),
        )
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.attrs.setdefault("exception", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.end = self._now()
            stack.pop()
            with self._lock:
                self._finished.append(sp)

    def trace(self, name: str | None = None, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span` (span named after the function
        unless ``name`` is given)."""

        def deco(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a synthetic span with explicit timestamps.

        Used to merge *simulated* timelines (the :mod:`repro.gpu` runtime's
        Fig. 7 stage breakdowns) into the same trace as measured spans.
        """
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        with self._lock:
            self._finished.append(sp)
        return sp

    def ingest(
        self,
        spans: list["Span | dict[str, Any]"],
        offset: float | None = None,
    ) -> list[Span]:
        """Adopt finished spans produced by *another* tracer.

        This is how subtrees captured in worker processes (CBench cells,
        per-rank compressions under ``REPRO_WORKERS``) rejoin the parent
        trace.  Span ids are remapped into this tracer's id space with
        parent/child edges preserved within the batch; roots stay roots
        (they are not re-parented — worker subtrees ran on other
        threads/processes).  ``offset`` shifts the batch's timestamps;
        ``None`` aligns its latest end with this tracer's current clock
        (worker epochs are not comparable to ours).
        """
        batch = [
            Span.from_dict(s) if isinstance(s, dict) else s for s in spans
        ]
        if not batch:
            return []
        if offset is None:
            latest = max(s.end if s.end is not None else s.start for s in batch)
            offset = self._now() - latest
        idmap = {s.span_id: next(self._ids) for s in batch}
        adopted = [
            Span(
                name=s.name,
                span_id=idmap[s.span_id],
                parent_id=idmap.get(s.parent_id),
                thread_id=s.thread_id,
                start=s.start + offset,
                end=None if s.end is None else s.end + offset,
                status=s.status,
                attrs=dict(s.attrs),
            )
            for s in batch
        ]
        with self._lock:
            self._finished.extend(adopted)
        return adopted

    # -- inspection ---------------------------------------------------------

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> list[Span]:
        """Snapshot of completed spans (oldest first)."""
        with self._lock:
            return list(self._finished)

    def drain(self, since_id: int = 0) -> list[Span]:
        """Finished spans with ``span_id > since_id`` (for incremental
        collection, e.g. attaching one CBench cell's subtree to its record)."""
        with self._lock:
            return [s for s in self._finished if s.span_id > since_id]

    def last_span_id(self) -> int:
        """High-water mark for a later :meth:`drain` call."""
        with self._lock:
            return self._finished[-1].span_id if self._finished else 0

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()
