"""Structured tracing: nested spans with a thread-safe tracer.

A :class:`Span` is one timed region of work (a compression stage, a
CBench cell, a per-rank compress).  Spans nest: each thread keeps its own
stack, so concurrent ranks in :mod:`repro.parallel.compression` produce
independent, correctly-parented subtrees instead of interleaving.

Two entry points::

    with tracer.span("sz.huffman", bytes=n):   # context manager
        ...

    @tracer.trace("cbench.run_one")            # decorator
    def run_one(...): ...

Timing uses :func:`time.perf_counter` (monotonic, the resolution the
paper's per-stage breakdowns need); wall-clock epochs never enter a
duration.  Finished spans accumulate on the tracer and are exported by
:mod:`repro.telemetry.export`.

**Distributed traces.**  When a :class:`repro.telemetry.context.TraceContext`
is active (the service client/server and the parallel executor activate
one), every span additionally gets a *context identity*: the shared
``trace_id``, a fresh random 64-bit ``ctx_id``, and the enclosing
context's span id as ``ctx_parent_id``; the contextvar is advanced for
the span's duration so nested spans — including spans opened in other
processes that re-activate the propagated context — chain into one
cross-process tree.  Local integer ``span_id``s keep working unchanged
for single-process traces; ctx ids are ``None`` when no context is
active, so nothing changes for existing callers.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.telemetry import context as trace_context

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start: float  # perf_counter seconds, relative to the tracer epoch
    end: float | None = None
    status: str = "ok"  # "ok" or "error"
    attrs: dict[str, Any] = field(default_factory=dict)
    # Distributed-trace identity (None outside an active TraceContext).
    # ctx ids are random 64-bit hex, unique across processes, so stitched
    # trees need no id remapping the way local integer ids do.
    trace_id: str | None = None
    ctx_id: str | None = None
    ctx_parent_id: str | None = None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready flat record (the JSONL line schema)."""
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
            record["ctx_id"] = self.ctx_id
            record["ctx_parent_id"] = self.ctx_parent_id
        return record

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (``duration`` is derived, ignored)."""
        return cls(
            name=raw["name"],
            span_id=raw["span_id"],
            parent_id=raw.get("parent_id"),
            thread_id=raw.get("thread_id", 0),
            start=raw["start"],
            end=raw.get("end"),
            status=raw.get("status", "ok"),
            attrs=dict(raw.get("attrs", {})),
            trace_id=raw.get("trace_id"),
            ctx_id=raw.get("ctx_id"),
            ctx_parent_id=raw.get("ctx_parent_id"),
        )


class Tracer:
    """Thread-safe producer of nested :class:`Span` trees.

    The per-thread span stack lives in a ``threading.local``; the finished
    span list is guarded by a lock.  Span ids are globally unique within
    the tracer so parent/child edges survive export and merging.

    ``max_finished`` bounds retention for long-lived processes (the
    compression daemon): once the finished list exceeds the cap, the
    oldest spans are dropped.  :meth:`finished_total` keeps counting
    everything ever finished so periodic harvesters can tell how many
    spans they missed.
    """

    def __init__(self, name: str = "repro", max_finished: int | None = None) -> None:
        self.name = name
        self.max_finished = max_finished
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._dropped = 0
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def now(self) -> float:
        """Current time on the tracer clock (seconds since its epoch);
        the timebase :meth:`add_span` timestamps live in."""
        return self._now()

    def _append_finished(self, spans: list[Span]) -> None:
        """Append under the lock, enforcing ``max_finished`` retention."""
        with self._lock:
            self._finished.extend(spans)
            cap = self.max_finished
            if cap is not None and len(self._finished) > cap:
                drop = len(self._finished) - cap
                del self._finished[:drop]
                self._dropped += drop

    # -- span production ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; exceptions mark it ``status="error"`` and
        propagate, with the parent span restored either way.

        Inside an active :class:`~repro.telemetry.context.TraceContext`
        the span is stamped with the trace id and a fresh ctx id, and the
        context is advanced to point at this span for its duration, so
        downstream hops (and nested spans) parent under it.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start=self._now(),
            attrs=dict(attrs),
        )
        ctx = trace_context.current()
        token = None
        if ctx is not None:
            sp.trace_id = ctx.trace_id
            sp.ctx_id = trace_context.new_span_id()
            sp.ctx_parent_id = ctx.span_id
            token = trace_context._current.set(
                trace_context.TraceContext(ctx.trace_id, sp.ctx_id, ctx.span_id)
            )
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.attrs.setdefault("exception", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.end = self._now()
            # Concurrent asyncio tasks interleave enter/exit on one thread
            # stack; remove *this* span wherever it sits rather than
            # blindly popping the top (which may belong to another task).
            if stack and stack[-1] is sp:
                stack.pop()
            else:
                try:
                    stack.remove(sp)
                except ValueError:
                    pass
            if token is not None:
                trace_context._current.reset(token)
            self._append_finished([sp])

    def trace(self, name: str | None = None, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span` (span named after the function
        unless ``name`` is given)."""

        def deco(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        ctx: "trace_context.TraceContext | None" = None,
        root: bool = False,
        **attrs: Any,
    ) -> Span:
        """Record a synthetic span with explicit timestamps.

        Used to merge *simulated* timelines (the :mod:`repro.gpu` runtime's
        Fig. 7 stage breakdowns) into the same trace as measured spans,
        and by the service batcher to record queue-wait/dispatch spans
        after the fact.  ``ctx``, when given, is the span's *identity* in
        a distributed trace: the span adopts ``ctx.span_id`` as its ctx
        id and ``ctx.parent_id`` as its ctx parent (pre-minting the id
        with :meth:`TraceContext.child` lets a caller hand the identity
        to a worker before the span is recorded).  ``root=True`` skips
        the thread-stack parent lookup entirely — for callers (the
        service batcher) whose thread may have unrelated spans open.
        """
        if parent is None and not root:
            stack = self._stack()
            parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        if ctx is not None:
            sp.trace_id = ctx.trace_id
            sp.ctx_id = ctx.span_id
            sp.ctx_parent_id = ctx.parent_id
        self._append_finished([sp])
        return sp

    def ingest(
        self,
        spans: list["Span | dict[str, Any]"],
        offset: float | None = None,
    ) -> list[Span]:
        """Adopt finished spans produced by *another* tracer.

        This is how subtrees captured in worker processes (CBench cells,
        per-rank compressions under ``REPRO_WORKERS``) rejoin the parent
        trace.  Span ids are remapped into this tracer's id space with
        parent/child edges preserved within the batch; roots stay roots
        (they are not re-parented — worker subtrees ran on other
        threads/processes).  ``offset`` shifts the batch's timestamps;
        ``None`` aligns its latest end with this tracer's current clock
        (worker epochs are not comparable to ours).
        """
        batch = [
            Span.from_dict(s) if isinstance(s, dict) else s for s in spans
        ]
        if not batch:
            return []
        if offset is None:
            latest = max(s.end if s.end is not None else s.start for s in batch)
            offset = self._now() - latest
        idmap = {s.span_id: next(self._ids) for s in batch}
        adopted = [
            Span(
                name=s.name,
                span_id=idmap[s.span_id],
                parent_id=idmap.get(s.parent_id),
                thread_id=s.thread_id,
                start=s.start + offset,
                end=None if s.end is None else s.end + offset,
                status=s.status,
                attrs=dict(s.attrs),
                # ctx ids are globally unique hex — adopted verbatim, so a
                # worker subtree stays attached to its remote parent span.
                trace_id=s.trace_id,
                ctx_id=s.ctx_id,
                ctx_parent_id=s.ctx_parent_id,
            )
            for s in batch
        ]
        self._append_finished(adopted)
        return adopted

    # -- inspection ---------------------------------------------------------

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> list[Span]:
        """Snapshot of completed spans (oldest first)."""
        with self._lock:
            return list(self._finished)

    def finished_total(self) -> int:
        """Spans ever finished, including any dropped by ``max_finished``.

        ``finished_total() - len(finished_spans())`` is the drop count; a
        periodic harvester uses it to index into the retained window.
        """
        with self._lock:
            return self._dropped + len(self._finished)

    def drain(self, since_id: int = 0) -> list[Span]:
        """Finished spans with ``span_id > since_id`` (for incremental
        collection, e.g. attaching one CBench cell's subtree to its record)."""
        with self._lock:
            return [s for s in self._finished if s.span_id > since_id]

    def last_span_id(self) -> int:
        """High-water mark for a later :meth:`drain` call."""
        with self._lock:
            return self._finished[-1].span_id if self._finished else 0

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()
