"""``repro-top``: a live terminal dashboard for the compression daemon.

``python -m repro.telemetry top`` polls a running daemon's STATS op and
redraws a one-screen summary on an interval — the ``top(1)`` view of a
compression service: request rate, queue depth, in-flight count, batch
sizes, latency percentiles, cache hit rate, and the hottest pipeline
stages by self-time (from the daemon's span harvest, see
``CompressionService._harvest_spans``).

Rendering is ANSI, not curses: a frame is one plain string and the
screen refresh is ``ESC[2J ESC[H`` + frame.  That keeps
:func:`render_frame` a pure function of two STATS snapshots — trivially
testable, and ``--once`` prints a single frame for scripts and CI.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.telemetry.exposition import parse_metric_key

__all__ = ["render_frame", "run_top"]

#: ANSI "clear screen, cursor home" prefix used between live frames.
CLEAR = "\x1b[2J\x1b[H"

#: How many rows the stage table shows.
TOP_STAGES = 12


def _fmt_rate(value: float) -> str:
    return f"{value:8.1f}"


def _fmt_ms(value: Any) -> str:
    return f"{float(value):7.2f}" if value is not None else "      –"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:7.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TiB"


def _counter(metrics: Mapping[str, Any], name: str) -> float:
    snap = metrics.get(name)
    return float(snap.get("value", 0.0)) if isinstance(snap, dict) else 0.0


def _stage_rows(metrics: Mapping[str, Any]) -> list[tuple[str, float, float, float]]:
    """(stage, self_s, total_s, count) rows sorted by self-time, hottest first."""
    self_s: dict[str, float] = {}
    total_s: dict[str, float] = {}
    count: dict[str, float] = {}
    for key, snap in metrics.items():
        if not isinstance(snap, dict) or snap.get("type") != "counter":
            continue
        base, labels = parse_metric_key(key)
        stage = labels.get("name")
        if stage is None:
            continue
        if base == "spans_self_seconds":
            self_s[stage] = float(snap["value"])
        elif base == "spans_seconds":
            total_s[stage] = float(snap["value"])
        elif base == "spans_count":
            count[stage] = float(snap["value"])
    rows = [
        (stage, s, total_s.get(stage, s), count.get(stage, 0.0))
        for stage, s in self_s.items()
    ]
    rows.sort(key=lambda r: r[1], reverse=True)
    return rows


def render_frame(
    stats: Mapping[str, Any],
    prev: Mapping[str, Any] | None = None,
    dt: float | None = None,
    endpoint: str = "",
) -> str:
    """One dashboard frame from a STATS reply (rates need ``prev`` + ``dt``)."""
    metrics = stats.get("metrics") or {}
    latency = stats.get("latency") or {}
    lines: list[str] = []

    uptime = float(stats.get("uptime_s", 0.0))
    lines.append(
        f"repro service {endpoint}  up {uptime:8.1f}s"
        f"  requests {int(stats.get('requests_total', 0)):>8d}"
    )

    qps = busy_rate = None
    if prev is not None and dt and dt > 0:
        qps = (
            float(stats.get("requests_total", 0))
            - float(prev.get("requests_total", 0))
        ) / dt
        prev_metrics = prev.get("metrics") or {}
        busy_rate = (
            _counter(metrics, "service.rejected_busy")
            - _counter(prev_metrics, "service.rejected_busy")
        ) / dt
    lines.append(
        "qps "
        + (_fmt_rate(qps) if qps is not None else "       –")
        + f"   inflight {int(stats.get('requests_inflight', 0)):>4d}"
        + f"   queue {int(stats.get('queue_depth', 0)):>4d}"
        + "   busy/s "
        + (_fmt_rate(busy_rate) if busy_rate is not None else "       –")
    )

    batch = metrics.get("service.batch_size")
    if isinstance(batch, dict) and batch.get("count"):
        mean_batch = batch["sum"] / batch["count"]
        lines.append(
            f"batches {int(_counter(metrics, 'service.batches')):>6d}"
            f"   mean batch {mean_batch:6.2f}"
            f"   batched reqs "
            f"{int(_counter(metrics, 'service.batched_requests')):>6d}"
        )

    lines.append(
        "latency ms  p50 " + _fmt_ms(latency.get("p50_ms"))
        + "   p99 " + _fmt_ms(latency.get("p99_ms"))
        + "   mean " + _fmt_ms(latency.get("mean_ms"))
        + f"   (n={int(latency.get('window_n', latency.get('window', 0)))})"
    )

    bytes_in = _counter(metrics, "service.bytes_in")
    bytes_out = _counter(metrics, "service.bytes_out")
    lines.append(
        "bytes in " + _fmt_bytes(bytes_in) + "   out " + _fmt_bytes(bytes_out)
    )

    cache = stats.get("cache")
    if isinstance(cache, dict):
        hits = float(cache.get("hits", 0))
        misses = float(cache.get("misses", 0))
        total = hits + misses
        rate = (hits / total * 100.0) if total else 0.0
        lines.append(
            f"cache hits {int(hits):>6d} / {int(total):>6d}  ({rate:5.1f}%)"
        )

    sessions = stats.get("sessions")
    if isinstance(sessions, dict) and (
        sessions.get("open") or sessions.get("evictions")
        or _counter(metrics, "service.session_steps")
    ):
        lines.append(
            f"sessions {int(sessions.get('open', 0)):>4d}"
            f" /{int(sessions.get('max', 0)):>4d} open"
            f"   steps {int(_counter(metrics, 'service.session_steps')):>7d}"
            f"   evicted {int(sessions.get('evictions', 0)):>5d}"
            + "   in " + _fmt_bytes(
                _counter(metrics, "service.session_bytes_in"))
            + "   out " + _fmt_bytes(
                _counter(metrics, "service.session_bytes_out"))
        )

    stages = _stage_rows(metrics)
    if stages:
        lines.append("")
        lines.append(
            f"{'stage':<28} {'self s':>9} {'total s':>9} {'count':>8}"
        )
        for stage, self_s, total_s, n in stages[:TOP_STAGES]:
            lines.append(
                f"{stage[:28]:<28} {self_s:9.3f} {total_s:9.3f} {int(n):8d}"
            )
    return "\n".join(lines) + "\n"


def run_top(
    host: str = "127.0.0.1",
    port: int | None = None,
    interval_s: float = 1.0,
    once: bool = False,
    iterations: int | None = None,
) -> int:
    """Poll STATS and redraw until interrupted (or ``once``/``iterations``)."""
    from repro.service.client import DEFAULT_PORT, ServiceClient

    port = DEFAULT_PORT if port is None else port
    endpoint = f"{host}:{port}"
    prev: dict[str, Any] | None = None
    prev_t = 0.0
    drawn = 0
    try:
        with ServiceClient(host=host, port=port) as client:
            while True:
                stats = client.stats()
                now = time.monotonic()
                frame = render_frame(
                    stats,
                    prev,
                    (now - prev_t) if prev is not None else None,
                    endpoint=endpoint,
                )
                if once:
                    print(frame, end="")
                    return 0
                print(CLEAR + frame, end="", flush=True)
                drawn += 1
                if iterations is not None and drawn >= iterations:
                    return 0
                prev, prev_t = stats, now
                time.sleep(interval_s)
    except KeyboardInterrupt:
        print()
        return 0
