"""Prometheus text exposition for the metrics registry.

:func:`render_prometheus` turns a
:class:`~repro.telemetry.metrics.MetricsRegistry` into the Prometheus
text format (version 0.0.4) — the lingua franca every scraper, agent,
and ``curl | grep`` reader understands.  Pure stdlib: the registry's
snapshot is rendered with string formatting, no client library.

Two naming conventions bridge the registry's flat key space onto
Prometheus' name+labels model:

* Registry keys are dotted (``service.bytes_in``); dots and other
  illegal characters become underscores (``service_bytes_in``).
* A key may carry **labels in the name** — ``service.latency_ms{op=
  "compress"}`` — which this module parses back into real Prometheus
  labels.  Keys with and without labels under the same base name join
  one metric family with a single ``# TYPE`` header.

Type mapping: counters gain the conventional ``_total`` suffix;
gauges are emitted verbatim; histograms expand into cumulative
``_bucket{le="..."}`` series (the registry stores per-bucket counts),
a ``+Inf`` bucket equal to ``_count``, plus ``_sum`` and ``_count``.

:func:`serve_metrics` is the optional pull endpoint: a blocking
stdlib ``http.server`` that answers ``GET /metrics`` — enough for a
Prometheus scrape job against a process that is not the daemon (the
daemon itself answers the METRICS op over MSG1 instead).
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Mapping

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "PROM_CONTENT_TYPE",
    "parse_metric_key",
    "relabel_exposition",
    "render_prometheus",
    "serve_metrics",
]

#: Content type of text exposition format version 0.0.4.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``base{key="value",key2="value2"}`` — the label-in-name convention.
_LABELED_KEY_RE = re.compile(r"^([^{]+)\{(.*)\}$")
_LABEL_PAIR_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_ILLEGAL_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry key into (sanitized name, labels).

    ``service.latency_ms{op="compress"}`` →
    ``("service_latency_ms", {"op": "compress"})``; a plain key has no
    labels.  A malformed label block degrades to part of the name
    (sanitized) rather than failing the whole exposition.
    """
    labels: dict[str, str] = {}
    name = key
    match = _LABELED_KEY_RE.match(key)
    if match is not None:
        name = match.group(1)
        body = match.group(2)
        pairs = _LABEL_PAIR_RE.findall(body)
        # Only accept the parse when it consumed the whole label body.
        rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
        if rebuilt == body:
            labels = dict(pairs)
        else:
            name = key  # malformed: sanitize the key wholesale
    name = _ILLEGAL_CHARS.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name, labels


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Prometheus-style number: integers without the trailing ``.0``."""
    as_float = float(value)
    if math.isnan(as_float):
        return "NaN"
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def relabel_exposition(text: str, labels: Mapping[str, str]) -> str:
    """Add ``labels`` to every sample of an exposition ``text``.

    The cluster router uses this to merge per-shard scrapes into one
    fleet exposition: each shard's samples gain ``shard="<id>"`` without
    re-parsing values or histograms.  Comment lines (``# TYPE``/
    ``# HELP``) pass through; a label key already present in a sample is
    left alone (the shard's own claim wins over the router's).
    """
    extra = dict(labels)
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            out.append(line)
            continue
        if series.endswith("}") and "{" in series:
            name, _, body = series.partition("{")
            body = body[:-1]
            add = {
                k: v for k, v in extra.items() if f'{k}="' not in body
            }
            inner = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(add.items())
            )
            joined = ",".join(p for p in (inner, body) if p)
            out.append(f"{name}{{{joined}}} {value}")
        else:
            out.append(f"{series}{_labels_text(extra)} {value}")
    return "\n".join(out) + ("\n" if out else "")


def render_prometheus(
    registry: MetricsRegistry | None,
    extra_gauges: Mapping[str, float] | None = None,
    extra_labels: Mapping[str, str] | None = None,
) -> str:
    """Render ``registry`` (and ad-hoc ``extra_gauges``) as exposition text.

    Families are emitted sorted by name, each with one ``# TYPE`` line;
    series within a family are sorted by their label sets, so output is
    deterministic and diff-friendly.  ``registry=None`` renders only the
    extras (a daemon running without telemetry still exposes uptime).

    ``extra_labels`` are stamped on every series — the shard-identity
    hook: a daemon started with ``--shard-id s0`` exposes all its
    samples as ``...{shard="s0"}``, so a fleet's scrapes stay
    distinguishable after aggregation.  A label-in-name key that
    already carries one of the extra keys wins over the extra.
    """
    snapshot = registry.snapshot() if registry is not None else {}
    stamp = dict(extra_labels or {})
    # family name -> (type, list of (labels, snapshot))
    families: dict[str, tuple[str, list[tuple[dict[str, str], dict[str, Any]]]]] = {}
    for key, snap in snapshot.items():
        name, labels = parse_metric_key(key)
        if stamp:
            labels = {**stamp, **labels}
        kind = snap.get("type", "gauge")
        fam = families.get(name)
        if fam is None:
            families[name] = (kind, [(labels, snap)])
        elif fam[0] == kind:
            fam[1].append((labels, snap))
        else:
            # Same base name, conflicting types: keep both by suffixing.
            alt = f"{name}_{kind}"
            families.setdefault(alt, (kind, []))[1].append((labels, snap))
    for name, value in (extra_gauges or {}).items():
        clean, labels = parse_metric_key(name)
        if stamp:
            labels = {**stamp, **labels}
        families.setdefault(clean, ("gauge", []))[1].append(
            (labels, {"type": "gauge", "value": float(value)})
        )

    lines: list[str] = []
    for name in sorted(families):
        kind, series = families[name]
        series.sort(key=lambda item: sorted(item[0].items()))
        if kind == "counter":
            lines.append(f"# TYPE {name}_total counter")
            for labels, snap in series:
                lines.append(
                    f"{name}_total{_labels_text(labels)} "
                    f"{_fmt(snap['value'])}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            for labels, snap in series:
                bounds = snap.get("bounds", [])
                counts = snap.get("counts", [])
                cumulative = 0
                for bound, count in zip(bounds, counts):
                    cumulative += int(count)
                    le = dict(labels, le=_fmt(float(bound)))
                    lines.append(
                        f"{name}_bucket{_labels_text(le)} {cumulative}"
                    )
                le = dict(labels, le="+Inf")
                lines.append(
                    f"{name}_bucket{_labels_text(le)} "
                    f"{_fmt(snap.get('count', cumulative))}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_fmt(snap.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} "
                    f"{_fmt(snap.get('count', 0))}"
                )
        else:
            lines.append(f"# TYPE {name} gauge")
            for labels, snap in series:
                lines.append(
                    f"{name}{_labels_text(labels)} {_fmt(snap['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def serve_metrics(
    source: Callable[[], str] | MetricsRegistry,
    host: str = "127.0.0.1",
    port: int = 9464,
    *,
    ready: "Callable[[int], None] | None" = None,
) -> None:
    """Serve ``GET /metrics`` forever over stdlib ``http.server``.

    ``source`` is either a registry (re-rendered per scrape) or a
    zero-argument callable returning exposition text (letting a caller
    compose, e.g., daemon STATS polling).  ``ready`` is called with the
    bound port once listening — the CLI uses it to print the URL, tests
    use it to learn an ephemeral port.  Blocks until interrupted.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    if isinstance(source, MetricsRegistry):
        registry = source
        text_source = lambda: render_prometheus(registry)  # noqa: E731
    else:
        text_source = source

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            path = self.path.split("?", 1)[0].rstrip("/")
            if path not in ("", "/metrics"):
                self.send_error(404, "try /metrics")
                return
            try:
                body = text_source().encode("utf-8")
            except Exception as exc:  # noqa: BLE001 - scrape must not kill serving
                self.send_error(500, f"{type(exc).__name__}: {exc}")
                return
            self.send_response(200)
            self.send_header("Content-Type", PROM_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args: Any) -> None:
            pass  # scrapes are periodic; default stderr logging is noise

    with ThreadingHTTPServer((host, port), Handler) as httpd:
        if ready is not None:
            ready(httpd.server_address[1])
        httpd.serve_forever()
