"""repro.telemetry — zero-dependency observability for the compression stack.

One facade, two implementations:

* :class:`Telemetry` — a live :class:`~repro.telemetry.spans.Tracer` plus
  a :class:`~repro.telemetry.metrics.MetricsRegistry`.
* :class:`NullTelemetry` — the process-wide default.  Every call is a
  no-op (`span()` hands back one shared, reusable context manager), so
  instrumented hot paths cost a method call and nothing else when
  observability is off.

Usage::

    from repro import telemetry

    tm = telemetry.enable()                 # swap in a live Telemetry
    ... run a CBench sweep ...
    telemetry.export.write_jsonl("trace.jsonl", tm.tracer.finished_spans())
    telemetry.disable()                     # back to the free default

    python -m repro.telemetry report trace.jsonl   # per-stage table

Instrumented modules fetch the active instance *per call*
(``telemetry.get_telemetry()``), so enabling after import works.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.telemetry import context, export, exposition, metrics, process, report, spans  # noqa: F401 (re-export)
from repro.telemetry.context import TraceContext
from repro.telemetry.metrics import (
    DEFAULT_BIT_BUCKETS,
    DEFAULT_BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.process import current_rss_bytes, peak_rss_bytes
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "peak_rss_bytes",
    "current_rss_bytes",
    "Telemetry",
    "NullTelemetry",
    "Tracer",
    "Span",
    "TraceContext",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_telemetry",
    "set_telemetry",
    "enable",
    "disable",
    "enabled_telemetry",
    "DEFAULT_BIT_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]


class Telemetry:
    """Live telemetry: tracer + metrics behind one handle."""

    enabled = True

    def __init__(
        self, name: str = "repro", max_finished: int | None = None
    ) -> None:
        self.tracer = Tracer(name, max_finished=max_finished)
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def trace(self, name: str | None = None, **attrs: Any) -> Callable:
        return self.tracer.trace(name, **attrs)

    # delegated metric one-liners (the instrumentation surface)
    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.count(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        self.metrics.observe(name, value, bounds)

    def observe_many(self, name: str, values: Iterable[float],
                     bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        self.metrics.observe_many(name, values, bounds)

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()


class _NullContext:
    """Shared no-op context manager; also a degenerate no-op Span stand-in."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    # Span-ish surface so `with tm.span(...) as sp: sp.attrs[...]` works
    # unchanged when telemetry is off.
    @property
    def attrs(self) -> dict[str, Any]:
        return {}

    @property
    def duration(self) -> float:
        return 0.0


_NULL_CONTEXT = _NullContext()


class _NullMetrics(MetricsRegistry):
    """Registry whose update one-liners do nothing and allocate nothing."""

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        pass

    def observe_many(self, name: str, values: Iterable[float],
                     bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        pass


class NullTelemetry:
    """Default no-op telemetry — the disabled-path guarantee.

    ``span`` returns one shared context manager, ``trace`` returns the
    function unwrapped, and the metrics one-liners discard their inputs,
    so instrumentation sites leave no trace (literally) in output or
    timing when observability is off.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullMetrics()
        self.tracer = None  # no spans are ever produced

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CONTEXT

    def trace(self, name: str | None = None, **attrs: Any) -> Callable:
        def deco(fn: Callable) -> Callable:
            return fn
        return deco

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        pass

    def observe_many(self, name: str, values: Iterable[float],
                     bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        pass

    def clear(self) -> None:
        pass


_NULL = NullTelemetry()
_active: Telemetry | NullTelemetry = _NULL
_swap_lock = threading.Lock()


def get_telemetry() -> Telemetry | NullTelemetry:
    """The process-wide active telemetry (NullTelemetry unless enabled)."""
    return _active


def set_telemetry(tm: Telemetry | NullTelemetry) -> Telemetry | NullTelemetry:
    """Install ``tm`` as the active telemetry; returns the previous one."""
    global _active
    with _swap_lock:
        previous = _active
        _active = tm
    return previous


def enable(name: str = "repro") -> Telemetry:
    """Install and return a fresh live :class:`Telemetry`."""
    tm = Telemetry(name)
    set_telemetry(tm)
    return tm


def disable() -> None:
    """Restore the shared :class:`NullTelemetry` default."""
    set_telemetry(_NULL)


@contextmanager
def enabled_telemetry(name: str = "repro") -> Iterator[Telemetry]:
    """Scoped enable: live telemetry inside the block, prior one after."""
    tm = Telemetry(name)
    previous = set_telemetry(tm)
    try:
        yield tm
    finally:
        set_telemetry(previous)
