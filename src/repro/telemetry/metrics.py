"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the telemetry subsystem — the
quantities the paper's analysis reads off a run besides stage times:
bytes in/out, quantization outlier counts, Huffman alphabet/table sizes,
ZFP bit-plane truncation statistics.

All instruments are thread-safe (single lock per instrument; the hot
update path is one lock + one add).  Histograms use *fixed* upper-bound
buckets fixed at creation time: ``observe(v)`` lands in the first bucket
with ``v <= bound``, or in the implicit ``+Inf`` overflow bucket.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_BIT_BUCKETS",
]

#: Power-of-4 byte buckets: 64 B .. 1 GiB (payload/outlier-section sizes).
DEFAULT_BYTE_BUCKETS: tuple[float, ...] = tuple(float(4**k) * 64 for k in range(13))

#: Power-of-2 bit buckets: 1 .. 65536 (per-block bit budgets, table sizes).
DEFAULT_BIT_BUCKETS: tuple[float, ...] = tuple(float(2**k) for k in range(17))


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative-free per-bucket counts.

    ``bounds`` are inclusive upper edges in increasing order; observations
    above the last bound count in the overflow bucket.  ``sum``/``count``
    let a reader recover the mean without the raw stream.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or any(nxt <= prev for nxt, prev in zip(edges[1:], edges)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = edges
        self._lock = threading.Lock()
        self._counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = int(np.searchsorted(self.bounds, value, side="left"))
        with self._lock:
            self._counts[idx] += 1
            self._sum += float(value)
            self._count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Vectorized :meth:`observe` (one lock acquisition total)."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.bounds, arr, side="left")
        add = np.bincount(idx, minlength=len(self.bounds) + 1)
        with self._lock:
            self._counts += add
            self._sum += float(arr.sum())
            self._count += int(arr.size)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts; the final entry is the overflow bucket."""
        with self._lock:
            return [int(c) for c in self._counts]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "bounds": list(self.bounds),
                "counts": [int(c) for c in self._counts],
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create semantics.

    The convenience one-liners (:meth:`count`, :meth:`observe`,
    :meth:`set_gauge`) are what the instrumented hot paths call; they cost
    one dict lookup when telemetry is enabled and nothing when the active
    telemetry is the null implementation (which overrides them).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            return inst

    def counter(self, name: str) -> Counter:
        inst = self._get_or_create(name, lambda: Counter(name))
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} already registered as {type(inst).__name__}")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get_or_create(name, lambda: Gauge(name))
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} already registered as {type(inst).__name__}")
        return inst

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> Histogram:
        inst = self._get_or_create(name, lambda: Histogram(name, bounds))
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} already registered as {type(inst).__name__}")
        return inst

    # -- one-liner update paths (overridden to no-ops by NullTelemetry) ----

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        self.histogram(name, bounds).observe(value)

    def observe_many(self, name: str, values: Iterable[float],
                     bounds: Sequence[float] = DEFAULT_BIT_BUCKETS) -> None:
        self.histogram(name, bounds).observe_many(values)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as plain JSON-ready dicts."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
