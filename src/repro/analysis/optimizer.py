"""The configuration-optimization guideline (Section V-D).

The paper's three-step recipe:

1. benchmark the compressor configurations (CBench sweeps);
2. keep the configurations whose *post-analysis* quality is acceptable
   (pk ratio within 1 +/- 1%, halo counts preserved);
3. among those, pick the one with the **highest compression ratio** —
   which, because both PCIe transfer time and kernel time grow with
   bitrate (Figs. 7, 10), is simultaneously the fastest and the smallest.

:func:`select_best_fit` implements steps 2-3 over generic candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import AnalysisError


@dataclass(frozen=True)
class ConfigCandidate:
    """One evaluated configuration of one field."""

    field_name: str
    compressor: str
    mode: str
    parameter: float
    compression_ratio: float
    acceptable: bool
    diagnostics: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BestFitResult:
    """Chosen configuration per field, plus the aggregate ratio."""

    per_field: dict[str, ConfigCandidate]
    overall_compression_ratio: float

    def parameters(self) -> dict[str, float]:
        """field -> chosen knob value (the tuples quoted in Section V-B)."""
        return {name: c.parameter for name, c in self.per_field.items()}


def select_best_fit(candidates: list[ConfigCandidate]) -> BestFitResult:
    """Apply guideline steps 2-3: filter acceptable, maximize ratio.

    The overall ratio treats every field as equally sized (true for both
    HACC and Nyx, whose six fields have identical element counts):
    ``overall = n_fields / sum(1 / ratio_f)`` — the harmonic composition
    of per-field ratios, i.e. total original bytes over total compressed
    bytes.
    """
    if not candidates:
        raise AnalysisError("no candidates supplied")
    fields = sorted({c.field_name for c in candidates})
    chosen: dict[str, ConfigCandidate] = {}
    for name in fields:
        ok = [c for c in candidates if c.field_name == name and c.acceptable]
        if not ok:
            raise AnalysisError(
                f"no acceptable configuration for field {name!r}; "
                "widen the sweep or relax the tolerance"
            )
        chosen[name] = max(ok, key=lambda c: c.compression_ratio)
    inv_sum = sum(1.0 / c.compression_ratio for c in chosen.values())
    overall = len(chosen) / inv_sum
    return BestFitResult(per_field=chosen, overall_compression_ratio=overall)
