"""Error-accumulation curves for snapshot sequences (in-situ workloads).

Independent per-snapshot compression has a flat error profile by
construction; a *temporal* codec (delta-coded against the previous
decompressed snapshot, :mod:`repro.compressors.temporal`) could in
principle let error creep upward step over step.  These helpers measure
exactly that: per-timestep pointwise error, P(k) ratio deviation, and a
halo-mass proxy ratio, so a drifting configuration shows up as a rising
curve instead of a silent quality loss at step 50.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cosmo.power_spectrum import power_spectrum, power_spectrum_ratio
from repro.errors import DataError
from repro.metrics.error import max_abs_error

__all__ = ["snapshot_drift", "drift_curve", "halo_mass_proxy"]


def halo_mass_proxy(
    field: np.ndarray, threshold: float | None = None
) -> tuple[float, float]:
    """Total mass in overdense cells, a cheap stand-in for FoF halo mass.

    Returns ``(mass, threshold)`` where ``threshold`` defaults to
    ``mean + 2 * std`` of ``field``.  Callers comparing original vs
    reconstruction must compute the threshold on the *original* and pass
    it in for the reconstruction, so both sides gate on the same level.
    """
    a = np.asarray(field, dtype=np.float64)
    if threshold is None:
        threshold = float(a.mean() + 2.0 * a.std())
    mask = a > threshold
    return float(a[mask].sum()), float(threshold)


def snapshot_drift(
    original: np.ndarray,
    reconstructed: np.ndarray,
    box_size: float,
    nbins: int = 16,
) -> dict[str, float]:
    """Drift metrics of one reconstructed snapshot against its original.

    Returns ``max_abs_error`` (pointwise), ``pk_max_dev`` (the largest
    ``|P(k) ratio - 1|`` over all bins — 0.01 is the paper's
    acceptability edge) and ``halo_mass_ratio`` (reconstructed / original
    proxy mass at the original's threshold; 1.0 means no drift, and also
    when the original has no overdense cells at all).
    """
    original = np.asarray(original)
    reconstructed = np.asarray(reconstructed)
    if original.shape != reconstructed.shape:
        raise DataError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    ref_spec = power_spectrum(
        np.asarray(original, dtype=np.float64), box_size, nbins=nbins
    )
    rec_spec = power_spectrum(
        np.asarray(reconstructed, dtype=np.float64), box_size, nbins=nbins
    )
    ratio = power_spectrum_ratio(ref_spec, rec_spec)
    finite = ratio[np.isfinite(ratio)]
    pk_max_dev = float(np.max(np.abs(finite - 1.0))) if finite.size else 0.0
    orig_mass, threshold = halo_mass_proxy(original)
    rec_mass, _ = halo_mass_proxy(reconstructed, threshold=threshold)
    halo_ratio = rec_mass / orig_mass if orig_mass > 0.0 else 1.0
    return {
        "max_abs_error": max_abs_error(original, reconstructed),
        "pk_max_dev": pk_max_dev,
        "halo_mass_ratio": float(halo_ratio),
    }


def drift_curve(
    originals: Sequence[np.ndarray],
    reconstructions: Sequence[np.ndarray],
    box_size: float,
    nbins: int = 16,
) -> dict[str, list[float]]:
    """Per-timestep drift metrics over a whole series.

    Returns column vectors (``step``, ``max_abs_error``, ``pk_max_dev``,
    ``halo_mass_ratio``) ready for plotting error-vs-timestep curves.
    """
    if len(originals) != len(reconstructions):
        raise DataError(
            f"series length mismatch: {len(originals)} originals vs "
            f"{len(reconstructions)} reconstructions"
        )
    cols: dict[str, list[float]] = {
        "step": [],
        "max_abs_error": [],
        "pk_max_dev": [],
        "halo_mass_ratio": [],
    }
    for i, (orig, rec) in enumerate(zip(originals, reconstructions)):
        point = snapshot_drift(orig, rec, box_size, nbins=nbins)
        cols["step"].append(float(i))
        for key, value in point.items():
            cols[key].append(value)
    return cols
