"""Halo-count-ratio sweeps on particle data (Fig. 6).

For each compression configuration of the HACC position (and velocity)
fields, re-run the FoF halo finder on the reconstructed particles and
compare mass-binned halo counts to the original catalog's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compressors.base import Compressor
from repro.cosmo.datasets import ParticleDataset
from repro.cosmo.halos import (
    MassFunction,
    find_halos,
    halo_count_ratio,
    halo_mass_function,
)
from repro.errors import DataError


@dataclass(frozen=True)
class HaloRatioPoint:
    """Halo mass function comparison for one configuration."""

    parameter: float
    bitrate: float
    compression_ratio: float
    mass_bin_centers: np.ndarray
    counts_original: np.ndarray
    counts_reconstructed: np.ndarray
    ratio: np.ndarray

    @property
    def max_ratio_deviation(self) -> float:
        finite = np.isfinite(self.ratio)
        if not finite.any():
            return float("nan")
        return float(np.max(np.abs(self.ratio[finite] - 1.0)))


def _roundtrip_positions(
    compressor: Compressor,
    dataset: ParticleDataset,
    mode: str,
    knob: str,
    value: float,
    **extra,
) -> tuple[np.ndarray, float, float]:
    """Compress/decompress x, y, z; returns positions + mean rate/CR."""
    recon = {}
    bits = 0.0
    orig_bytes = 0
    comp_bytes = 0
    for name in ("x", "y", "z"):
        buf = compressor.compress(
            dataset.fields[name], **{"mode": mode, knob: value, **extra}
        )
        recon[name] = compressor.decompress(buf)
        bits += buf.bitrate
        orig_bytes += buf.original_nbytes
        comp_bytes += buf.compressed_nbytes
    pos = np.stack([recon[k] for k in ("x", "y", "z")], axis=1).astype(np.float64)
    pos = np.mod(pos, dataset.box_size)
    return pos, bits / 3.0, orig_bytes / comp_bytes


def halo_ratio_sweep(
    compressor: Compressor,
    dataset: ParticleDataset,
    knob: str,
    values: Sequence[float],
    mode: str,
    linking_length: float | None = None,
    min_members: int = 10,
    nbins: int = 10,
    **extra,
) -> list[HaloRatioPoint]:
    """Sweep position-field configurations and compare halo catalogs."""
    if not values:
        raise DataError("need at least one knob value")
    if linking_length is None:
        n_side = round(dataset.n_particles ** (1.0 / 3.0))
        linking_length = 0.2 * dataset.box_size / max(2, n_side)

    cat_o = find_halos(
        dataset.positions.astype(np.float64),
        dataset.box_size,
        linking_length,
        min_members=min_members,
    )
    mf_o: MassFunction = halo_mass_function(cat_o, nbins=nbins)

    out = []
    for v in values:
        pos, bitrate, cr = _roundtrip_positions(
            compressor, dataset, mode, knob, float(v), **extra
        )
        cat_r = find_halos(pos, dataset.box_size, linking_length, min_members=min_members)
        mf_r = halo_mass_function(cat_r, bin_edges=mf_o.bin_edges)
        out.append(
            HaloRatioPoint(
                parameter=float(v),
                bitrate=bitrate,
                compression_ratio=cr,
                mass_bin_centers=mf_o.bin_centers,
                counts_original=mf_o.counts,
                counts_reconstructed=mf_r.counts,
                ratio=halo_count_ratio(mf_o, mf_r),
            )
        )
    return out
