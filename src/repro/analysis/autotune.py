"""Knob autotuning: searches over compressor parameters.

The §V-D guideline needs a *set* of candidate configurations; these
helpers automate producing them:

* :func:`search_error_bound_for_ratio` — bisect the ABS bound of an
  error-bounded compressor until the achieved compression ratio hits a
  target (used by the decimation comparison, which must match storage).
* :func:`search_max_acceptable_bound` — bisect for the loosest bound
  whose post-analysis quality predicate still passes; combined with the
  monotone throughput of Fig. 10 this *is* the best-fit search.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.compressors.base import Compressor
from repro.errors import AnalysisError
from repro.util.validation import check_positive


def search_error_bound_for_ratio(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    rel_tol: float = 0.1,
    max_iters: int = 30,
) -> float:
    """Error bound whose compression ratio is ~``target_ratio``.

    Compression ratio is monotone (non-strictly) in the bound, so plain
    bisection on ``log eb`` converges; returns the best bound found even
    if ``rel_tol`` is not reached within ``max_iters``.
    """
    check_positive(target_ratio, "target_ratio")
    scale = float(np.abs(data).max())
    if scale == 0:
        raise AnalysisError("cannot tune a bound on an all-zero field")
    lo, hi = scale * 1e-9, scale * 1.0
    best_eb, best_gap = hi, np.inf
    for _ in range(max_iters):
        mid = float(np.sqrt(lo * hi))
        ratio = compressor.compress(data, error_bound=mid, mode="abs").compression_ratio
        gap = abs(ratio - target_ratio) / target_ratio
        if gap < best_gap:
            best_eb, best_gap = mid, gap
        if gap <= rel_tol:
            return mid
        if ratio > target_ratio:
            hi = mid  # compressing too hard -> tighten the bound
        else:
            lo = mid
    return best_eb


def search_max_acceptable_bound(
    compressor: Compressor,
    data: np.ndarray,
    acceptable: Callable[[np.ndarray, np.ndarray], bool],
    lo: float,
    hi: float,
    iters: int = 12,
) -> float | None:
    """Loosest ABS bound in ``[lo, hi]`` whose reconstruction satisfies
    ``acceptable(original, reconstruction)``.

    Returns ``None`` when even ``lo`` fails.  Assumes acceptability is
    monotone in the bound (true for the paper's pk/halo criteria in
    practice).
    """
    check_positive(lo, "lo")
    if hi <= lo:
        raise AnalysisError("need hi > lo")

    def ok(eb: float) -> bool:
        recon = compressor.decompress(compressor.compress(data, error_bound=eb, mode="abs"))
        return acceptable(data, recon)

    if not ok(lo):
        return None
    if ok(hi):
        return hi
    good, bad = lo, hi
    for _ in range(iters):
        mid = float(np.sqrt(good * bad))
        if ok(mid):
            good = mid
        else:
            bad = mid
    return good
