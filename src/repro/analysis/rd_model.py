"""Rate-distortion curve modeling.

The paper observes (§V-A) that "most of the rate-distortion curves
linearly increase with the bitrate and have similar slopes".  Information
theory predicts the slope: each extra bit of quantization halves the
error, adding ``20 log10(2) ~ 6.02 dB``.  These helpers fit that line and
locate the low-bitrate departure point (the blocking-induced drop the
paper discusses for GPU-SZ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.rate_distortion import RDPoint
from repro.errors import AnalysisError

#: The theoretical high-rate slope in dB per bit.
DB_PER_BIT_THEORY = 20.0 * np.log10(2.0)


@dataclass(frozen=True)
class RDLineFit:
    """Least-squares line ``psnr = slope * bitrate + intercept``."""

    slope_db_per_bit: float
    intercept_db: float
    r_squared: float
    n_points: int

    def predict(self, bitrate: np.ndarray) -> np.ndarray:
        return self.slope_db_per_bit * np.asarray(bitrate) + self.intercept_db


def fit_rd_line(points: list[RDPoint], min_bitrate: float = 0.0) -> RDLineFit:
    """Fit the linear (high-rate) regime of a rate-distortion curve."""
    usable = [
        p for p in points
        if p.bitrate >= min_bitrate and np.isfinite(p.psnr)
    ]
    if len(usable) < 2:
        raise AnalysisError("need at least two finite RD points to fit")
    x = np.array([p.bitrate for p in usable])
    y = np.array([p.psnr for p in usable])
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - float((resid**2).sum()) / ss_tot if ss_tot > 0 else 1.0
    return RDLineFit(
        slope_db_per_bit=float(slope),
        intercept_db=float(intercept),
        r_squared=r2,
        n_points=len(usable),
    )


def departure_bitrate(
    points: list[RDPoint], fit: RDLineFit, tolerance_db: float = 6.0
) -> float | None:
    """Largest bitrate whose PSNR falls ``tolerance_db`` below the fitted
    line — the onset of the low-rate drop (None when the curve never
    departs)."""
    departures = [
        p.bitrate
        for p in points
        if np.isfinite(p.psnr) and fit.predict(np.array([p.bitrate]))[0] - p.psnr > tolerance_db
    ]
    return max(departures) if departures else None
