"""Halo-by-halo matching between original and reconstructed catalogs.

Fig. 6 compares halo *counts* per mass bin; a stricter question the
paper's MCP/MBP discussion implies is whether the *same* halos survive:
does each original halo have a counterpart at the same place with the
same mass, and how far do the centers and the most-bound particles move?
This module matches catalogs by proximity (mutual nearest centers within
a tolerance) and reports per-halo fidelity statistics — the kind of
deep-dive a cosmologist would run before trusting a compression setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosmo.halos import HaloCatalog
from repro.errors import AnalysisError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class HaloMatchResult:
    """Outcome of matching ``reconstructed`` against ``original``."""

    matched_original: np.ndarray       # indices into the original catalog
    matched_reconstructed: np.ndarray  # parallel indices into the other
    center_offsets: np.ndarray         # Mpc/h per matched pair
    mass_ratios: np.ndarray            # reconstructed/original per pair
    n_original: int
    n_reconstructed: int

    @property
    def match_fraction(self) -> float:
        """Fraction of original halos with a counterpart."""
        if self.n_original == 0:
            return float("nan")
        return self.matched_original.size / self.n_original

    @property
    def spurious_fraction(self) -> float:
        """Fraction of reconstructed halos with no original counterpart."""
        if self.n_reconstructed == 0:
            return 0.0
        return 1.0 - self.matched_reconstructed.size / self.n_reconstructed

    def summary(self) -> dict[str, float]:
        return {
            "match_fraction": self.match_fraction,
            "spurious_fraction": self.spurious_fraction,
            "median_center_offset": float(np.median(self.center_offsets))
            if self.center_offsets.size
            else float("nan"),
            "median_mass_ratio": float(np.median(self.mass_ratios))
            if self.mass_ratios.size
            else float("nan"),
        }


def _pairwise_periodic_distance(
    a: np.ndarray, b: np.ndarray, box_size: float
) -> np.ndarray:
    d = a[:, None, :] - b[None, :, :]
    d -= box_size * np.rint(d / box_size)
    return np.sqrt(np.einsum("ijk,ijk->ij", d, d))


def match_halo_catalogs(
    original: HaloCatalog,
    reconstructed: HaloCatalog,
    box_size: float,
    max_offset: float | None = None,
) -> HaloMatchResult:
    """Mutual-nearest-neighbor matching of halo centers.

    A pair matches when each is the other's nearest center and their
    separation is below ``max_offset`` (default: half the mean
    inter-halo spacing of the original catalog).
    """
    check_positive(box_size, "box_size")
    n_o, n_r = original.n_halos, reconstructed.n_halos
    if n_o == 0:
        raise AnalysisError("original catalog is empty")
    if n_r == 0:
        return HaloMatchResult(
            matched_original=np.zeros(0, dtype=np.int64),
            matched_reconstructed=np.zeros(0, dtype=np.int64),
            center_offsets=np.zeros(0),
            mass_ratios=np.zeros(0),
            n_original=n_o,
            n_reconstructed=0,
        )
    if max_offset is None:
        max_offset = 0.5 * box_size / max(1.0, n_o ** (1.0 / 3.0))

    dist = _pairwise_periodic_distance(original.centers, reconstructed.centers, box_size)
    nearest_r = dist.argmin(axis=1)
    nearest_o = dist.argmin(axis=0)
    o_idx = np.arange(n_o)
    mutual = nearest_o[nearest_r] == o_idx
    close = dist[o_idx, nearest_r] <= max_offset
    keep = mutual & close
    mo = o_idx[keep]
    mr = nearest_r[keep]
    return HaloMatchResult(
        matched_original=mo,
        matched_reconstructed=mr,
        center_offsets=dist[mo, mr],
        mass_ratios=reconstructed.masses[mr] / original.masses[mo],
        n_original=n_o,
        n_reconstructed=n_r,
    )
