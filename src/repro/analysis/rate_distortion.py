"""Rate-distortion curves (Fig. 4).

For an error-bounded compressor the knob is the bound; for a fixed-rate
compressor it is the bitrate.  Either way the curve reports *measured*
bitrate (bits/value of the actual stream) against PSNR, which is the
paper's device for comparing compressors with different control modes
fairly ("we plot the rate-distortion curve ... for a fair comparison").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compressors.base import Compressor
from repro.errors import DataError
from repro.metrics.error import psnr


@dataclass(frozen=True)
class RDPoint:
    """One point of a rate-distortion curve."""

    parameter: float
    bitrate: float
    compression_ratio: float
    psnr: float


def rate_distortion_curve(
    compressor: Compressor,
    data: np.ndarray,
    knob: str,
    values: Sequence[float],
    mode: str,
    **extra,
) -> list[RDPoint]:
    """Sweep ``values`` of ``knob`` and collect (bitrate, PSNR) points,
    sorted by bitrate."""
    if not values:
        raise DataError("need at least one knob value")
    points = []
    for v in values:
        kwargs = {"mode": mode, knob: float(v), **extra}
        buf = compressor.compress(data, **kwargs)
        recon = compressor.decompress(buf)
        points.append(
            RDPoint(
                parameter=float(v),
                bitrate=buf.bitrate,
                compression_ratio=buf.compression_ratio,
                psnr=psnr(data, recon),
            )
        )
    return sorted(points, key=lambda p: p.bitrate)
