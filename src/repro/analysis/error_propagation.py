"""Error propagation from compressed fields to derived quantities.

Fig. 5's composite panels (overall density, velocity magnitude) analyze
quantities *derived from several independently compressed fields*, so
the effective error bound on the composite is not any single field's
knob.  This module provides the first-order propagation rules and
empirical verification:

* sums (overall density): ``|d(a+b)| <= eb_a + eb_b`` (exact, not just
  first order);
* Euclidean magnitude: ``| |v'| - |v| | <= |v' - v| <= sqrt(sum eb_i^2)``
  by the reverse triangle inequality (exact);
* products: ``|d(ab)| <~ |a| eb_b + |b| eb_a`` (first order; the exact
  bound adds ``eb_a * eb_b``).

These are the guarantees a domain scientist needs to pick per-field
bounds from a composite-quantity tolerance — step 2 of the Section V-D
guideline run in reverse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_positive


def sum_bound(*bounds: float) -> float:
    """Exact ABS bound on a sum of independently bounded fields."""
    if not bounds:
        raise DataError("need at least one bound")
    for b in bounds:
        check_positive(b, "bound")
    return float(sum(bounds))


def magnitude_bound(*bounds: float) -> float:
    """Exact ABS bound on the Euclidean magnitude of a bounded vector.

    ``| |v'| - |v| | <= ||v' - v||_2 <= sqrt(sum_i eb_i^2)``.
    """
    if not bounds:
        raise DataError("need at least one bound")
    for b in bounds:
        check_positive(b, "bound")
    return float(np.sqrt(sum(b * b for b in bounds)))


def product_bound(abs_a: float, abs_b: float, eb_a: float, eb_b: float) -> float:
    """Exact ABS bound on a product of bounded fields given magnitude
    caps ``abs_a >= |a|``, ``abs_b >= |b|``."""
    for v, name in ((abs_a, "abs_a"), (abs_b, "abs_b")):
        check_positive(v, name, strict=False)
    for v, name in ((eb_a, "eb_a"), (eb_b, "eb_b")):
        check_positive(v, name)
    return float(abs_a * eb_b + abs_b * eb_a + eb_a * eb_b)


def required_field_bounds_for_sum(total_bound: float, n_fields: int) -> float:
    """Equal per-field ABS bound guaranteeing ``total_bound`` on a sum."""
    check_positive(total_bound, "total_bound")
    if n_fields < 1:
        raise DataError("n_fields must be >= 1")
    return total_bound / n_fields


def required_field_bounds_for_magnitude(total_bound: float, n_fields: int) -> float:
    """Equal per-field ABS bound guaranteeing ``total_bound`` on a
    Euclidean magnitude of ``n_fields`` components."""
    check_positive(total_bound, "total_bound")
    if n_fields < 1:
        raise DataError("n_fields must be >= 1")
    return total_bound / float(np.sqrt(n_fields))


def verify_composite_bound(
    originals: list[np.ndarray],
    reconstructions: list[np.ndarray],
    composite,
    bound: float,
) -> tuple[bool, float]:
    """Empirically check a propagated bound on ``composite(fields)``.

    Returns ``(holds, measured_max_error)``.
    """
    if len(originals) != len(reconstructions) or not originals:
        raise DataError("need matching non-empty field lists")
    check_positive(bound, "bound")
    ref = composite(*[np.asarray(a, dtype=np.float64) for a in originals])
    rec = composite(*[np.asarray(a, dtype=np.float64) for a in reconstructions])
    err = float(np.abs(rec - ref).max())
    return err <= bound * (1 + 1e-9), err
