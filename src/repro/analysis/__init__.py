"""Evaluation-level analyses composing compressors, cosmology metrics and
the GPU model into the paper's experiments."""

from repro.analysis.autotune import (
    search_error_bound_for_ratio,
    search_max_acceptable_bound,
)
from repro.analysis.decimation_study import decimation_vs_compression
from repro.analysis.drift import drift_curve, halo_mass_proxy, snapshot_drift
from repro.analysis.halo_matching import HaloMatchResult, match_halo_catalogs
from repro.analysis.halo_ratio import HaloRatioPoint, halo_ratio_sweep
from repro.analysis.rd_model import (
    DB_PER_BIT_THEORY,
    RDLineFit,
    departure_bitrate,
    fit_rd_line,
)
from repro.analysis.optimizer import (
    BestFitResult,
    ConfigCandidate,
    select_best_fit,
)
from repro.analysis.pk_ratio import PkRatioPoint, pk_ratio_sweep
from repro.analysis.rate_distortion import RDPoint, rate_distortion_curve
from repro.analysis.throughput import (
    breakdown_study,
    cpu_gpu_comparison,
    gpu_comparison_study,
    throughput_vs_rate_study,
)

__all__ = [
    "search_error_bound_for_ratio",
    "search_max_acceptable_bound",
    "decimation_vs_compression",
    "drift_curve",
    "halo_mass_proxy",
    "snapshot_drift",
    "HaloMatchResult",
    "match_halo_catalogs",
    "DB_PER_BIT_THEORY",
    "RDLineFit",
    "fit_rd_line",
    "departure_bitrate",
    "RDPoint",
    "rate_distortion_curve",
    "PkRatioPoint",
    "pk_ratio_sweep",
    "HaloRatioPoint",
    "halo_ratio_sweep",
    "ConfigCandidate",
    "BestFitResult",
    "select_best_fit",
    "breakdown_study",
    "cpu_gpu_comparison",
    "gpu_comparison_study",
    "throughput_vs_rate_study",
]
