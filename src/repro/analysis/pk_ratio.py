"""Power-spectrum-ratio sweeps on grid fields (Fig. 5).

For each compression configuration, compare P(k) of the reconstructed
field to the original's; a configuration is *acceptable* when every bin
falls within the paper's ``1 +/- 1%`` band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.compressors.base import Compressor
from repro.cosmo.power_spectrum import (
    PowerSpectrumResult,
    power_spectrum,
    power_spectrum_ratio,
    ratio_within_band,
)
from repro.errors import DataError


@dataclass(frozen=True)
class PkRatioPoint:
    """Spectrum ratio of one configuration on one (derived) field."""

    parameter: float
    bitrate: float
    compression_ratio: float
    k: np.ndarray
    ratio: np.ndarray
    acceptable: bool


def pk_ratio_sweep(
    compressor: Compressor,
    data: np.ndarray,
    box_size: float,
    knob: str,
    values: Sequence[float],
    mode: str,
    nbins: int = 16,
    tolerance: float = 0.01,
    derive: Callable[[np.ndarray], np.ndarray] | None = None,
    **extra,
) -> list[PkRatioPoint]:
    """Sweep configurations and measure pk ratios.

    ``derive`` maps the raw field to the quantity whose spectrum is
    analyzed — identity for plain fields, or a composite (overall
    density, velocity magnitude) computed from the reconstruction.
    """
    if not values:
        raise DataError("need at least one knob value")
    fn = derive or (lambda a: np.asarray(a, dtype=np.float64))
    reference: PowerSpectrumResult = power_spectrum(fn(data), box_size, nbins=nbins)
    out = []
    for v in values:
        buf = compressor.compress(data, **{"mode": mode, knob: float(v), **extra})
        recon = compressor.decompress(buf)
        spec = power_spectrum(fn(recon), box_size, nbins=nbins)
        ratio = power_spectrum_ratio(reference, spec)
        out.append(
            PkRatioPoint(
                parameter=float(v),
                bitrate=buf.bitrate,
                compression_ratio=buf.compression_ratio,
                k=reference.k,
                ratio=ratio,
                acceptable=ratio_within_band(ratio, tolerance),
            )
        )
    return out


def composite_pk_ratio(
    originals: dict[str, np.ndarray],
    reconstructions: dict[str, np.ndarray],
    derive: Callable[[dict[str, np.ndarray]], np.ndarray],
    box_size: float,
    nbins: int = 16,
    tolerance: float = 0.01,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Pk ratio of a quantity derived from *several* fields (Fig. 5's
    overall-density and velocity-magnitude panels).

    Returns ``(k, ratio, acceptable)``.
    """
    ref = power_spectrum(derive(originals), box_size, nbins=nbins)
    rec = power_spectrum(derive(reconstructions), box_size, nbins=nbins)
    ratio = power_spectrum_ratio(ref, rec)
    return ref.k, ratio, ratio_within_band(ratio, tolerance)
