"""Throughput studies composing the GPU model (Figs. 7-10).

Each study returns plain records so the experiment modules and benches
can render tables without recomputing.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.gpu.device import GPU_CATALOG, GPUSpec, V100
from repro.gpu.kernel import cpu_throughput
from repro.gpu.pcie import NVLINK2, PCIE3_X16
from repro.gpu.runtime import simulate_compression, simulate_decompression


def breakdown_study(
    nvalues: int,
    rates: Sequence[float],
    device: GPUSpec = V100,
    codec: str = "cuzfp",
) -> list[dict[str, Any]]:
    """Fig. 7: per-stage time breakdown for both directions at each rate."""
    rows = []
    for direction, sim in (
        ("compress", simulate_compression),
        ("decompress", simulate_decompression),
    ):
        for rate in rates:
            run = sim(nvalues, float(rate), device=device, codec=codec)
            row: dict[str, Any] = {
                "direction": direction,
                "bitrate": float(rate),
                "total_ms": run.total_seconds * 1e3,
                "baseline_ms": run.baseline_seconds * 1e3,
            }
            for stage, seconds in run.breakdown().items():
                row[f"{stage}_ms"] = seconds * 1e3
            rows.append(row)
    return rows


def gpu_comparison_study(
    nvalues: int,
    rate: float,
    devices: Sequence[GPUSpec] = GPU_CATALOG,
    codec: str = "cuzfp",
) -> list[dict[str, Any]]:
    """Fig. 9: kernel throughput of each catalog GPU at one rate."""
    rows = []
    for device in devices:
        c = simulate_compression(nvalues, rate, device=device, codec=codec)
        d = simulate_decompression(nvalues, rate, device=device, codec=codec)
        rows.append(
            {
                "gpu": device.name,
                "architecture": device.architecture,
                "compress_kernel_gbps": c.kernel_throughput / 1e9,
                "decompress_kernel_gbps": d.kernel_throughput / 1e9,
            }
        )
    return rows


def throughput_vs_rate_study(
    nvalues: int,
    rates: Sequence[float],
    device: GPUSpec = V100,
    codec: str = "cuzfp",
) -> list[dict[str, Any]]:
    """Fig. 10: kernel vs overall throughput against bitrate, with the
    no-compression PCIe baseline."""
    rows = []
    for rate in rates:
        c = simulate_compression(nvalues, float(rate), device=device, codec=codec)
        d = simulate_decompression(nvalues, float(rate), device=device, codec=codec)
        rows.append(
            {
                "bitrate": float(rate),
                "compress_kernel_gbps": c.kernel_throughput / 1e9,
                "compress_overall_gbps": c.overall_throughput / 1e9,
                "decompress_kernel_gbps": d.kernel_throughput / 1e9,
                "decompress_overall_gbps": d.overall_throughput / 1e9,
                "baseline_gbps": c.original_bytes / c.baseline_seconds / 1e9,
            }
        )
    return rows


def mitigation_study(
    nvalues: int,
    rates: Sequence[float],
    device: GPUSpec = V100,
    codec: str = "cuzfp",
) -> list[dict[str, Any]]:
    """The paper's two proposed mitigations for the memcpy bottleneck
    (Section V-C): a faster interconnect (NVLink) and asynchronous
    kernel/transfer overlap — overall compression throughput under each.
    """
    rows = []
    for rate in rates:
        pcie = simulate_compression(nvalues, float(rate), device=device,
                                    codec=codec, link=PCIE3_X16)
        nvlink = simulate_compression(nvalues, float(rate), device=device,
                                      codec=codec, link=NVLINK2)
        rows.append(
            {
                "bitrate": float(rate),
                "pcie_gbps": pcie.overall_throughput / 1e9,
                "pcie_async_gbps": pcie.overlapped_throughput / 1e9,
                "nvlink_gbps": nvlink.overall_throughput / 1e9,
                "nvlink_async_gbps": nvlink.overlapped_throughput / 1e9,
            }
        )
    return rows


def cpu_gpu_comparison(
    nvalues: int,
    rate: float,
    device: GPUSpec = V100,
) -> list[dict[str, Any]]:
    """Fig. 8: SZ/ZFP on 1-core and 20-core CPU vs cuZFP on the V100.

    GPU rows report both kernel-only and with-transfer throughput; the
    multi-core ZFP decompression cell is ``None`` (the paper's "N/A").
    """
    rows = []
    for codec in ("sz", "zfp"):
        for threads in (1, 20):
            row: dict[str, Any] = {"platform": f"{codec.upper()} CPU {threads}-core"}
            for direction in ("compress", "decompress"):
                thr = cpu_throughput(codec, direction, threads=threads)
                row[f"{direction}_gbps"] = None if thr is None else thr / 1e9
            rows.append(row)
    c = simulate_compression(nvalues, rate, device=device, codec="cuzfp")
    d = simulate_decompression(nvalues, rate, device=device, codec="cuzfp")
    rows.append(
        {
            "platform": f"cuZFP {device.name} (kernel)",
            "compress_gbps": c.kernel_throughput / 1e9,
            "decompress_gbps": d.kernel_throughput / 1e9,
        }
    )
    rows.append(
        {
            "platform": f"cuZFP {device.name} (incl. transfer)",
            "compress_gbps": c.overall_throughput / 1e9,
            "decompress_gbps": d.overall_throughput / 1e9,
        }
    )
    return rows
