"""Decimation vs error-bounded compression at equal storage (paper §I).

The paper's opening argument: instead of decimating snapshots (keep one
in k), compress *every* snapshot with an error-bounded compressor at
ratio ~k — "error-bounded lossy compression techniques can usually
achieve much higher compression ratios, given the same distortion".

:func:`decimation_vs_compression` quantifies that on a synthetic Nyx
time series: for each storage budget it reports the worst-snapshot PSNR
and power-spectrum deviation of (a) decimation + temporal interpolation
and (b) SZ compression of every snapshot with the error bound tuned to
match the storage budget.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.analysis.autotune import search_error_bound_for_ratio
from repro.compressors.decimation import decimate
from repro.compressors.sz import SZCompressor
from repro.cosmo.power_spectrum import power_spectrum, power_spectrum_ratio
from repro.cosmo.timeseries import SnapshotSeries
from repro.metrics.error import psnr


def _series_quality(
    series: SnapshotSeries, reconstructed: list, field: str
) -> tuple[float, float]:
    """(worst-snapshot PSNR, worst-snapshot max pk deviation)."""
    worst_psnr = np.inf
    worst_dev = 0.0
    for orig, recon in zip(series.snapshots, reconstructed):
        a = orig.fields[field]
        b = recon.fields[field] if hasattr(recon, "fields") else recon
        worst_psnr = min(worst_psnr, psnr(a, b))
        ref = power_spectrum(a.astype(np.float64), orig.box_size, nbins=8)
        spec = power_spectrum(np.asarray(b, dtype=np.float64), orig.box_size, nbins=8)
        ratio = power_spectrum_ratio(ref, spec)
        worst_dev = max(worst_dev, float(np.nanmax(np.abs(ratio - 1.0))))
    return worst_psnr, worst_dev


def decimation_vs_compression(
    series: SnapshotSeries,
    field: str = "dark_matter_density",
    keep_everies: Sequence[int] = (2, 4),
    interpolation: str = "linear",
) -> list[dict[str, Any]]:
    """Compare both strategies at the storage ratios decimation offers."""
    sz = SZCompressor()
    rows: list[dict[str, Any]] = []
    for keep_every in keep_everies:
        dec = decimate(series, keep_every=keep_every, interpolation=interpolation)
        dec_recon = dec.reconstruct()
        d_psnr, d_dev = _series_quality(series, dec_recon, field)
        target_ratio = dec.storage_ratio
        rows.append(
            {
                "strategy": f"decimation (1 in {keep_every}, {interpolation})",
                "storage_ratio": target_ratio,
                "worst_psnr_db": d_psnr,
                "worst_pk_deviation": d_dev,
            }
        )

        # SZ on every snapshot, bound tuned to match the storage ratio.
        sample = series.snapshots[-1].fields[field]
        eb = search_error_bound_for_ratio(sz, sample, target_ratio)
        recon_fields = []
        achieved = []
        for snap in series.snapshots:
            buf = sz.compress(snap.fields[field], error_bound=eb, mode="abs")
            recon_fields.append(sz.decompress(buf))
            achieved.append(buf.compression_ratio)
        c_psnr, c_dev = _series_quality(series, recon_fields, field)
        rows.append(
            {
                "strategy": f"sz every snapshot (eb={eb:.3g})",
                "storage_ratio": float(np.mean(achieved)),
                "worst_psnr_db": c_psnr,
                "worst_pk_deviation": c_dev,
            }
        )
    return rows
