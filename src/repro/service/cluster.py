"""The cluster router: N compression daemons behaving as one service.

One daemon (:mod:`repro.service.server`) is a process; this module is
the *system* — the front-end that makes a fleet of daemon shards look
like a single MSG1 endpoint to every existing client.  A
:class:`ClusterRouter` accepts the same wire protocol the daemon
speaks, so :class:`~repro.service.client.ServiceClient` (and anything
else that talks MSG1) points at the router unchanged, and adds the
four things a single process cannot have:

* **placement** — COMPRESS/DECOMPRESS/SWEEP requests are routed by a
  consistent hash of their cache identity
  (:func:`routing_key` → :class:`~repro.service.ring.HashRing`), so a
  repeat sweep of the same field lands on the shard whose
  :class:`~repro.cache.ResultCache` is already warm;
* **membership** — a per-shard HEALTH probe loop feeds the
  :class:`~repro.service.membership.MembershipTable`; a shard that
  misses ``fail_after`` consecutive probes is drained from the ring
  (its keyspace arcs fail over to its ring neighbours) and re-admitted
  after ``recover_after`` clean probes;
* **hedging / failover** — a forward that errors fails over to the
  next shard in the key's ring preference order; a forward that is
  merely *slow* is hedged after ``hedge_after_s`` (a duplicate goes to
  the next preference, first reply wins, the loser's request id is
  abandoned: its late reply is drained off the shard's pipelined
  channel with the connection kept — a legacy shard's socket is closed
  instead — so a late duplicate reply can never be delivered);
* **fleet observability** — STATS merges every shard's snapshot into
  one picture, METRICS re-labels every shard's Prometheus exposition
  with ``shard="..."`` (the router itself reports as
  ``shard="router"``), and the CLUSTER op dumps topology, membership
  state, and ring ownership shares.

Shards are either **addressed** (a ``host:port`` list — processes some
init system owns) or **spawned** (``spawn=N`` local subprocesses,
supervised through :class:`repro.parallel.daemons.DaemonProcess`,
SIGTERM-drained when the router drains).

A traced request stays one tree across the extra hop: the router
adopts the client's context, opens ``router.request`` /
``router.forward`` spans under it, and re-injects its context into the
forwarded header — so the shard's ``service.request`` (and its queue /
dispatch / worker-process spans) stitch under the router's forward
span, client → router → shard → worker (``docs/OBSERVABILITY.md``).

The routing key is deterministic and cheap (one blake2b over the
header's cache identity plus the payload):

>>> import numpy as np
>>> from repro.service import protocol
>>> arr = np.zeros(8, dtype=np.float32)
>>> h = {"op": "compress", "compressor": "sz", "mode": "abs",
...      "value": 0.1, **protocol.array_fields(arr)}
>>> k1 = routing_key(h, protocol.pack_array(arr))
>>> k1 == routing_key(dict(h), protocol.pack_array(arr))  # deterministic
True
>>> routing_key({"op": "health"}, b"") is None            # control plane
True

See ``docs/CLUSTER.md`` for the operator's handbook.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import logging
import os
import signal
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.errors import ProtocolError, ServiceError
from repro.parallel.shm import shm_enabled
from repro.service import protocol
from repro.service.membership import MembershipTable
from repro.service.ring import HashRing
from repro.service.server import LATENCY_BOUNDS, SPAN_RETENTION, _percentile
from repro.telemetry import Telemetry, get_telemetry, set_telemetry
from repro.telemetry import context as trace_context

logger = logging.getLogger("repro.service.cluster")

__all__ = [
    "DEFAULT_ROUTER_PORT",
    "ClusterRouter",
    "ClusterThread",
    "routing_key",
]

#: Default router port (one above the daemon's 9461 family).
DEFAULT_ROUTER_PORT = 9470

#: Ops the router answers itself; everything else is forwarded.
ROUTER_OPS = frozenset({"health", "stats", "metrics", "cluster"})

#: How many recent routed-request latencies the percentile window keeps.
LATENCY_WINDOW = 4096


def routing_key(header: dict[str, Any], payload: bytes) -> bytes | None:
    """The consistent-hash key of one request, or ``None`` for keyless ops.

    The key covers exactly the request's *cache identity* — the fields
    that make two requests interchangeable work (compressor, options,
    mode, knob value, dtype/shape for COMPRESS; the sweep spec for
    SWEEP) plus the payload bytes — so equal work hashes to the same
    shard and its warm :class:`~repro.cache.ResultCache` entry, while
    ids, deadlines, and trace headers never perturb placement.
    """
    op = str(header.get("op", "")).lower()
    if op.startswith("session"):
        # Session ops hash the session id and *nothing else* — not the
        # payload, not the reference digest — so every step of one
        # session lands on the shard whose session table holds its
        # reference snapshot (shard-sticky placement, docs/INSITU.md).
        sid = header.get(protocol.SESSION_FIELD)
        if sid is None:
            return None
        h = hashlib.blake2b(digest_size=16)
        h.update(b"session:")
        h.update(str(sid).encode())
        return h.digest()
    if op == "compress":
        ident = [op, header.get("compressor"), header.get("options") or {},
                 header.get("mode"), header.get("value"),
                 header.get("dtype"), header.get("shape")]
    elif op == "decompress":
        ident = [op, header.get("compressor"), header.get("options") or {},
                 header.get("mode"), header.get("parameter"),
                 header.get("dtype"), header.get("shape")]
    elif op == "sweep":
        ident = [op, header.get("field"), header.get("sweeps")]
    else:
        return None
    # Zero-copy requests carry their bulk data as a shared-memory
    # descriptor and an empty frame payload — fold the descriptor into
    # the identity so placement stays deterministic for them too.
    shm = header.get(protocol.SHM_FIELD)
    if shm is not None:
        ident.append(shm)
    h = hashlib.blake2b(digest_size=16)
    h.update(json.dumps(ident, sort_keys=True, default=str).encode())
    h.update(payload)
    return h.digest()


class ShardChannel:
    """One pipelined connection to a shard, multiplexed by request id.

    The router assigns its *own* per-channel ids (the client's ``id``
    is restored on the way back), writes frames under a send lock, and
    a reader task completes per-request futures as replies arrive — in
    any order.  Cancelling a waiter (hedge loser, timeout) just forgets
    its id: when the shard's reply eventually lands, the reader drops
    it by id and the connection stays open — no socket churn, and a
    late duplicate reply can never reach a client.
    """

    def __init__(self, shard_id: str, host: str, port: int,
                 max_payload_bytes: int) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.max_payload_bytes = max_payload_bytes
        self.caps: frozenset[str] = frozenset()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._send_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None
        self._closed = False
        #: Late replies dropped by id with the connection kept open.
        self.drains = 0

    @property
    def closed(self) -> bool:
        return self._closed

    async def open(self, connect_timeout_s: float) -> bool:
        """Dial and HELLO; ``True`` iff the shard speaks pipelining."""
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=connect_timeout_s,
        )
        await protocol.write_frame(
            self._writer,
            {"op": "hello", protocol.CAPS_FIELD: [protocol.CAP_PIPELINE]},
        )
        frame = await protocol.read_frame(self._reader, self.max_payload_bytes)
        if frame is None:
            raise ProtocolError(f"shard {self.shard_id} closed during HELLO")
        reply, _ = frame
        caps = (
            reply.get(protocol.CAPS_FIELD)
            if reply.get("status") == "ok" else None
        )
        self.caps = frozenset(caps if isinstance(caps, list) else ())
        if protocol.CAP_PIPELINE not in self.caps:
            self.close()
            return False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return True

    async def request(
        self, header: dict[str, Any], payload: bytes, timeout_s: float
    ) -> tuple[dict[str, Any], bytes]:
        """One multiplexed round trip; safe to cancel at any point."""
        if self._closed:
            raise ProtocolError(f"channel to {self.shard_id} is closed")
        loop = asyncio.get_running_loop()
        client_id = header.get("id")
        future: asyncio.Future = loop.create_future()
        async with self._send_lock:
            if self._closed:
                raise ProtocolError(f"channel to {self.shard_id} is closed")
            self._next_id += 1
            rid = self._next_id
            self._pending[rid] = future
            try:
                await protocol.write_frame(
                    self._writer, {**header, "id": rid}, payload
                )
            except OSError:
                self._pending.pop(rid, None)
                self._fail(ProtocolError(
                    f"channel to {self.shard_id} broke mid-send"
                ))
                raise
        try:
            reply, body = await asyncio.wait_for(future, timeout=timeout_s)
        except (asyncio.CancelledError, asyncio.TimeoutError):
            # Abandon the id; the reader will drain the late reply and
            # keep the connection.  Tell the shard not to bother if the
            # request is still queued over there.
            if self._pending.pop(rid, None) is not None:
                self._cancel_soon(rid)
            raise
        reply = dict(reply)
        if client_id is not None:
            reply["id"] = client_id
        else:
            reply.pop("id", None)
        return reply, body

    def _cancel_soon(self, target: int) -> None:
        """Best-effort CANCEL for an abandoned id (fire and forget)."""
        if self._closed:
            return

        async def _send() -> None:
            with contextlib.suppress(OSError, asyncio.CancelledError):
                async with self._send_lock:
                    if self._closed:
                        return
                    self._next_id += 1
                    rid = self._next_id
                    future = asyncio.get_running_loop().create_future()
                    future.add_done_callback(
                        lambda f: f.cancelled() or f.exception()
                    )
                    self._pending[rid] = future
                    await protocol.write_frame(
                        self._writer,
                        {"op": "cancel", "cancel_id": target, "id": rid},
                    )

        asyncio.get_running_loop().create_task(_send())

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(
                    self._reader, self.max_payload_bytes
                )
                if frame is None:
                    self._fail(ProtocolError(
                        f"shard {self.shard_id} closed the channel"
                    ))
                    return
                reply, body = frame
                future = self._pending.pop(reply.get("id"), None)
                if future is None:
                    # A hedge loser's (or timed-out) reply — drained.
                    self.drains += 1
                    get_telemetry().count("router.hedge_drains")
                    continue
                if not future.done():
                    future.set_result((reply, body))
        except (OSError, ProtocolError) as exc:
            self._fail(exc)
        except asyncio.CancelledError:
            raise

    def _fail(self, exc: Exception) -> None:
        self._closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()

    def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        self._fail(ProtocolError(f"channel to {self.shard_id} closed"))


class ShardHandle:
    """One shard endpoint: identity, optional subprocess, data path.

    A shard that answers HELLO with the ``pipeline`` capability gets
    one :class:`ShardChannel` — every forward (and probe) multiplexes
    over it, and hedge losers are drained by id with the connection
    kept.  A pre-capability shard falls back to the legacy pool of
    one-request-per-connection ``(reader, writer)`` pairs, where any
    error or hedge cancellation *discards* the socket — a connection
    with an unread or half-read reply must never be reused.
    """

    def __init__(self, shard_id: str, host: str, port: int, proc=None) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.proc = proc  # DaemonProcess for spawned shards, else None
        self.channel: ShardChannel | None = None
        self.legacy = False  # shard failed HELLO → one-shot connections
        self._channel_lock = asyncio.Lock()
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def get_channel(
        self, connect_timeout_s: float, max_payload_bytes: int
    ) -> ShardChannel | None:
        """The live pipelined channel, or ``None`` for a legacy shard."""
        if self.legacy:
            return None
        if self.channel is not None and not self.channel.closed:
            return self.channel
        async with self._channel_lock:
            if self.legacy:
                return None
            if self.channel is not None and not self.channel.closed:
                return self.channel
            channel = ShardChannel(
                self.shard_id, self.host, self.port, max_payload_bytes
            )
            if await channel.open(connect_timeout_s):
                self.channel = channel
                return channel
            self.legacy = True
            logger.info(
                "shard %s does not pipeline — using legacy connections",
                self.shard_id,
            )
            return None

    async def acquire(
        self, connect_timeout_s: float
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=connect_timeout_s,
        )

    def release(self, conn) -> None:
        reader, writer = conn
        if not writer.is_closing():
            self._idle.append((reader, writer))

    def discard(self, conn) -> None:
        _, writer = conn
        with contextlib.suppress(Exception):
            writer.close()

    def close_idle(self) -> None:
        while self._idle:
            self.discard(self._idle.pop())
        if self.channel is not None:
            self.channel.close()
            self.channel = None

    def to_dict(self) -> dict[str, Any]:
        out = {"shard": self.shard_id, "host": self.host, "port": self.port}
        if self.proc is not None:
            out["pid"] = self.proc.pid
            out["spawned"] = True
        if self.legacy:
            out["legacy"] = True
        elif self.channel is not None:
            out["pipelined"] = not self.channel.closed
            out["drains"] = self.channel.drains
        return out


def _spawn_argv(
    index: int, shard_options: dict[str, Any]
) -> tuple[list[str], dict[str, str]]:
    """Command line + environment for one locally spawned shard."""
    import repro

    argv = [
        sys.executable, "-u", "-m", "repro.service", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--shard-id", f"s{index}",
    ]
    opts = dict(shard_options)
    cache_dir = opts.pop("cache_dir", None)
    if cache_dir is not None:
        # Per-shard cache subdirectories: consistent-hash placement makes
        # each shard's warm set disjoint, so sharing one directory would
        # only share lock traffic, not hits.
        argv += ["--cache", str(Path(cache_dir) / f"s{index}")]
    for key, flag in (
        ("workers", "--workers"),
        ("max_pending", "--max-pending"),
        ("batch_window_ms", "--batch-window-ms"),
        ("max_batch", "--max-batch"),
        ("timeout_s", "--timeout-s"),
        ("cache_max_bytes", "--cache-max-bytes"),
        ("backend", "--backend"),
    ):
        if opts.get(key) is not None:
            argv += [flag, str(opts[key])]
    unknown = set(opts) - {
        "workers", "max_pending", "batch_window_ms", "max_batch",
        "timeout_s", "cache_max_bytes", "backend",
    }
    if unknown:
        raise ServiceError(f"unknown shard option(s): {sorted(unknown)}")
    src = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    return argv, env


class ClusterRouter:
    """MSG1 front-end over N daemon shards (see module docstring).

    ``shards`` is a list of ``"host:port"`` endpoints to address;
    ``spawn`` asks the router to launch that many local shard daemons
    itself (``shard_options`` maps onto ``serve`` CLI flags:
    ``workers``, ``max_pending``, ``batch_window_ms``, ``max_batch``,
    ``timeout_s``, ``cache_dir``, ``cache_max_bytes``, ``backend``).
    At least one shard must come from somewhere.

    ``hedge_after_s=None`` disables hedging (failover on hard errors
    still happens); see ``docs/CLUSTER.md`` for how to pick a budget.
    """

    def __init__(
        self,
        shards: list[str] | None = None,
        *,
        spawn: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_options: dict[str, Any] | None = None,
        replicas: int | None = None,
        probe_interval_s: float = 0.25,
        probe_timeout_s: float = 2.0,
        fail_after: int = 3,
        recover_after: int = 2,
        hedge_after_s: float | None = None,
        forward_timeout_s: float = 300.0,
        connect_timeout_s: float = 5.0,
        max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES,
        pipeline_depth: int = 32,
        trace_out: str | None = None,
    ) -> None:
        if not shards and spawn <= 0:
            raise ServiceError(
                "a cluster needs shards: pass host:port endpoints or spawn=N"
            )
        self.host = host
        self.port = port
        self.spawn = spawn
        self.shard_options = dict(shard_options or {})
        self.probe_timeout_s = probe_timeout_s
        self.hedge_after_s = hedge_after_s
        self.forward_timeout_s = forward_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.max_payload_bytes = max_payload_bytes
        self.pipeline_depth = max(1, int(pipeline_depth))
        self.trace_out = trace_out
        self.ring = HashRing(
            replicas=replicas if replicas is not None else 128
        )
        self.membership = MembershipTable(
            fail_after=fail_after,
            recover_after=recover_after,
            probe_interval_s=probe_interval_s,
        )
        self.shard_handles: dict[str, ShardHandle] = {}
        self._addressed = list(shards or [])
        self._server: asyncio.AbstractServer | None = None
        self._draining = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._probe_tasks: list[asyncio.Task] = []
        self._started = time.perf_counter()
        self._requests_total = 0
        self._inflight = 0
        self._rr = 0  # round-robin cursor for keyless forwards
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._installed_telemetry = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn/register shards, bind, start probes; resolves ``port``."""
        if get_telemetry().enabled is False:
            set_telemetry(Telemetry(
                "router",
                max_finished=None if self.trace_out else SPAN_RETENTION,
            ))
            self._installed_telemetry = True
        for endpoint in self._addressed:
            host, _, port_s = endpoint.rpartition(":")
            try:
                self._register(ShardHandle(endpoint, host, int(port_s)))
            except ValueError as exc:
                raise ServiceError(
                    f"bad shard endpoint {endpoint!r} (want host:port)"
                ) from exc
        if self.spawn > 0:
            await self._spawn_shards(self.spawn)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for shard_id in list(self.shard_handles):
            self._probe_tasks.append(
                loop.create_task(self._probe_loop(shard_id))
            )
        logger.info(
            "routing on %s:%d over %d shard(s)",
            self.host, self.port, len(self.shard_handles),
        )

    async def _spawn_shards(self, count: int) -> None:
        from repro.parallel.daemons import DaemonProcess

        loop = asyncio.get_running_loop()
        procs = []
        for i in range(count):
            argv, env = _spawn_argv(i, self.shard_options)
            procs.append(DaemonProcess(
                argv,
                ready_pattern=r"serving on ([\d.]+):(\d+)",
                name=f"s{i}",
                env=env,
            ))
        # DaemonProcess.start blocks on the child's ready line; numpy
        # import dominates shard start-up, so bring the fleet up in
        # parallel on executor threads.
        matches = await asyncio.gather(
            *(loop.run_in_executor(None, p.start) for p in procs)
        )
        for i, (proc, match) in enumerate(zip(procs, matches)):
            self._register(ShardHandle(
                f"s{i}", match.group(1), int(match.group(2)), proc=proc
            ))

    def _register(self, handle: ShardHandle) -> None:
        if handle.shard_id in self.shard_handles:
            raise ServiceError(f"duplicate shard id {handle.shard_id!r}")
        self.shard_handles[handle.shard_id] = handle
        if self.membership.add(handle.shard_id) == "admit":
            self.ring.add(handle.shard_id)
        self._update_up_gauge()

    async def serve(self, install_signal_handlers: bool = True) -> None:
        """Run until drained (SIGTERM/SIGINT or :meth:`request_drain`)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(sig, self.request_drain)
        await self._draining.wait()
        await self._shutdown()

    def request_drain(self) -> None:
        if not self._draining.is_set():
            logger.info("router drain requested")
            self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    async def _shutdown(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        for task in self._probe_tasks:
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks, return_exceptions=True)
        # In-flight forwards finish and reply (the shard fleet is still
        # up); parked readers see EOF when their client hangs up.
        pending = [t for t in self._connections if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        for task in self._connections:
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for handle in self.shard_handles.values():
            handle.close_idle()
        # Spawned shards drain gracefully (SIGTERM) — concurrently, each
        # on its own executor thread, since terminate() blocks.
        spawned = [
            h.proc for h in self.shard_handles.values() if h.proc is not None
        ]
        if spawned:
            loop = asyncio.get_running_loop()
            await asyncio.gather(*(
                loop.run_in_executor(None, p.terminate) for p in spawned
            ))
        logger.info("router drained after %d request(s)", self._requests_total)
        if self.trace_out:
            self._dump_trace()
        if self._installed_telemetry:
            from repro.telemetry import NullTelemetry

            set_telemetry(NullTelemetry())
            self._installed_telemetry = False

    def _dump_trace(self) -> None:
        from repro.telemetry import export

        tm = get_telemetry()
        if not tm.enabled:
            return
        spans = tm.tracer.finished_spans()
        try:
            export.write_jsonl(self.trace_out, spans)
            logger.info("wrote %d span(s) to %s", len(spans), self.trace_out)
        except OSError as exc:  # pragma: no cover - disk full etc.
            logger.error("could not write %s: %s", self.trace_out, exc)

    # -- membership (probe loop + forward evidence) ------------------------

    def _update_up_gauge(self) -> None:
        get_telemetry().set_gauge(
            "router.shards_up", float(len(self.membership.serving()))
        )

    def _apply(self, verdict: str | None, shard_id: str) -> None:
        if verdict == "drain":
            self.ring.remove(shard_id)
            get_telemetry().count("router.shards_drained")
            logger.warning("shard %s drained from the ring", shard_id)
        elif verdict == "admit" and shard_id not in self.ring:
            self.ring.add(shard_id)
            get_telemetry().count("router.shards_admitted")
            logger.info("shard %s re-admitted to the ring", shard_id)
        if verdict:
            self._update_up_gauge()

    def _observe(self, shard_id: str, ok: bool, error: str = "") -> None:
        if ok:
            self._apply(self.membership.record_success(shard_id), shard_id)
        else:
            self._apply(
                self.membership.record_failure(shard_id, error), shard_id
            )

    async def _probe_loop(self, shard_id: str) -> None:
        tm = get_telemetry()
        while not self.draining:
            await asyncio.sleep(self.membership.probe_delay(shard_id))
            tm.count("router.probes")
            try:
                reply, _ = await self._forward_to(
                    shard_id, {"op": "health"}, b"",
                    timeout_s=self.probe_timeout_s,
                )
                # A draining shard answers ok but refuses new work — gate
                # it out just like a dead one; it re-admits if it returns.
                ok = reply.get("status") == "ok" and not reply.get("draining")
                error = "" if ok else f"draining={reply.get('draining')}"
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                ok, error = False, f"{type(exc).__name__}: {exc}"
            if not ok:
                tm.count("router.probe_failures")
            self._observe(shard_id, ok, error)

    # -- connection handling ----------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        tm = get_telemetry()
        loop = asyncio.get_running_loop()
        send_lock = asyncio.Lock()
        gate = asyncio.Semaphore(self.pipeline_depth)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, self.max_payload_bytes
                    )
                except ProtocolError as exc:
                    tm.count("router.protocol_errors")
                    with contextlib.suppress(Exception):
                        async with send_lock:
                            await protocol.write_frame(
                                writer,
                                {"status": "error", "code": "protocol",
                                 "error": str(exc)},
                            )
                    return
                if frame is None:
                    return
                header, payload = frame
                # Pipelined dispatch: each frame is served on its own
                # task (bounded by pipeline_depth), replies serialized
                # under send_lock — a slow forward never blocks the
                # next frame on this connection.
                await gate.acquire()
                task = loop.create_task(
                    self._serve_frame(writer, send_lock, gate, header, payload)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            logger.debug("peer %s reset", peer)
        finally:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_frame(
        self,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
        gate: asyncio.Semaphore,
        header: dict[str, Any],
        payload: bytes,
    ) -> None:
        try:
            await self._serve_request(writer, send_lock, header, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the connection task handles peer teardown
        finally:
            gate.release()

    async def _serve_request(
        self,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
        header: dict[str, Any],
        payload: bytes,
    ) -> None:
        tm = get_telemetry()
        op = str(header.get("op", "")).lower()
        rid = header.get("id")
        t0 = time.perf_counter()
        self._requests_total += 1
        self._inflight += 1
        tm.set_gauge("router.requests_inflight", float(self._inflight))
        tm.count("router.requests")
        tm.count(f"router.requests.{op or 'unknown'}")
        tm.count("router.bytes_in", len(payload))

        async def reply(h: dict[str, Any], body: bytes = b"") -> None:
            if rid is not None:
                h.setdefault("id", rid)
            tm.count("router.bytes_out", len(body))
            async with send_lock:
                await protocol.write_frame(writer, h, body)
            latency = time.perf_counter() - t0
            self._latencies.append(latency)
            tm.observe(
                "router.latency_ms", latency * 1e3, bounds=LATENCY_BOUNDS
            )

        ctx = trace_context.extract(header)
        try:
            with trace_context.use(ctx):
                with tm.span("router.request", op=op, bytes=len(payload)):
                    if self.draining and op not in ROUTER_OPS:
                        await reply(
                            {"status": "busy", "code": "draining",
                             "retry_after_ms": 50}
                        )
                    elif op == "hello":
                        await reply(self._hello(header))
                    elif op == "health":
                        await reply(self._health())
                    elif op == "cluster":
                        await reply(self._cluster())
                    elif op == "stats":
                        await reply(await self._fleet_stats())
                    elif op == "metrics":
                        text, ctype = await self._fleet_metrics()
                        await reply(
                            {"status": "ok", "content_type": ctype},
                            text.encode("utf-8"),
                        )
                    else:
                        fwd = header
                        if protocol.REPLY_SHM_FIELD in fwd:
                            # Reply segments are single-writer; hedged
                            # or failed-over attempts could land on two
                            # shards, so the router always asks shards
                            # to reply inline.  Request-side segments
                            # pass through — concurrent readers are
                            # harmless.
                            fwd = {
                                k: v for k, v in fwd.items()
                                if k != protocol.REPLY_SHM_FIELD
                            }
                            tm.count("router.reply_shm_stripped")
                        h, body, shard_id = await self._route(
                            op, fwd, payload
                        )
                        h = dict(h)
                        h.setdefault(protocol.SHARD_FIELD, shard_id)
                        await reply(h, body)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ServiceError as exc:
            tm.count("router.errors")
            await reply(
                {"status": "error",
                 "code": getattr(exc, "code", "routing"),
                 "error": str(exc)}
            )
        except Exception as exc:  # noqa: BLE001 — a bug must not kill the router
            logger.exception("internal error routing %s", op)
            tm.count("router.errors")
            await reply(
                {"status": "error", "code": "internal",
                 "error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            self._inflight -= 1
            tm.set_gauge("router.requests_inflight", float(self._inflight))

    # -- routing (placement + hedging + failover) --------------------------

    def _preferences(
        self, header: dict[str, Any], payload: bytes
    ) -> list[str]:
        """Candidate shards for one request, best first."""
        serving = self.membership.serving()
        if not serving:
            raise ServiceError("no shards available (all drained)")
        key = routing_key(header, payload)
        if key is None:
            # Keyless forwards (LIST, unknown ops) spread round-robin.
            self._rr += 1
            start = self._rr % len(serving)
            return serving[start:] + serving[:start]
        eligible = set(serving)
        prefs = [
            s for s in self.ring.preference(key, len(self.ring))
            if s in eligible
        ]
        return prefs or serving

    async def _route(
        self, op: str, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes, str]:
        """Dispatch one request with failover and (optional) hedging.

        Returns ``(reply_header, body, shard_id)`` of the first shard
        whose reply arrived.  Losing hedge attempts are cancelled; on a
        pipelining shard that just abandons the request id — the late
        reply is drained by the channel's reader (connection kept, a
        best-effort CANCEL chases the queued work) — while a legacy
        shard's socket is closed.  Either way the duplicate-suppression
        guarantee holds: a reply is only delivered to a waiter the
        router still has, and it keeps at most one winner.
        """
        tm = get_telemetry()
        candidates = deque(self._preferences(header, payload))
        # Session ops are *sticky*: the primary shard holds the session's
        # reference snapshot, so hedging or failing over to another shard
        # could only yield a no_session error — or worse, bytes from a
        # different stream.  One candidate, no hedge; if the primary is
        # down the client gets a clean session_lost to reopen from.
        sticky = op.startswith("session")
        if sticky:
            candidates = deque(list(candidates)[:1])
        total = len(candidates)
        pending: dict[asyncio.Task, tuple[str, bool]] = {}
        errors: list[str] = []

        def launch(hedge: bool) -> None:
            shard_id = candidates.popleft()
            task = asyncio.ensure_future(
                self._forward_traced(shard_id, header, payload, hedge)
            )
            pending[task] = (shard_id, hedge)
            tm.count(f'router.forwards{{shard="{shard_id}"}}')
            if hedge:
                tm.count("router.hedges")
                logger.info(
                    "hedging %s to %s after %.0f ms budget",
                    op, shard_id, (self.hedge_after_s or 0) * 1e3,
                )

        try:
            launch(hedge=False)
            while True:
                can_hedge = bool(candidates) and self.hedge_after_s is not None
                done, _ = await asyncio.wait(
                    set(pending),
                    timeout=self.hedge_after_s if can_hedge else None,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:  # budget elapsed: duplicate to the next shard
                    launch(hedge=True)
                    continue
                for task in done:
                    shard_id, was_hedge = pending.pop(task)
                    try:
                        reply, body = task.result()
                    except (OSError, ProtocolError,
                            asyncio.TimeoutError) as exc:
                        error = f"{type(exc).__name__}: {exc}"
                        self._observe(shard_id, ok=False, error=error)
                        errors.append(f"{shard_id}: {error}")
                        tm.count("router.forward_errors")
                        logger.warning(
                            "forward of %s to %s failed: %s",
                            op, shard_id, error,
                        )
                        continue
                    self._observe(shard_id, ok=True)
                    if was_hedge:
                        tm.count("router.hedge_wins")
                    return reply, body, shard_id
                if pending:
                    continue  # a hedge partner is still running
                if candidates:  # hard failover: next preference, immediately
                    tm.count("router.failovers")
                    launch(hedge=False)
                    continue
                if sticky:
                    exc = ServiceError(
                        f"session shard unavailable for {op}: "
                        + "; ".join(errors)
                        + " — the daemon-side session state is gone; "
                        "reopen the session and re-send from its last "
                        "keyframe"
                    )
                    exc.code = "session_lost"
                    raise exc
                raise ServiceError(
                    f"all {total} shard(s) failed for {op}: "
                    + "; ".join(errors)
                )
        finally:
            for task in pending:  # duplicate suppression
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def _forward_traced(
        self, shard_id: str, header: dict[str, Any], payload: bytes,
        hedge: bool,
    ) -> tuple[dict[str, Any], bytes]:
        tm = get_telemetry()
        if not tm.enabled and trace_context.current() is None:
            return await self._forward_to(shard_id, header, payload)
        with tm.span("router.forward", shard=shard_id, hedge=hedge):
            # Inject *inside* the span: the shard's service.request then
            # parents under this forward attempt, so a hedged request
            # shows both racing subtrees in one stitched trace.
            return await self._forward_to(
                shard_id, trace_context.inject(header), payload
            )

    async def _forward_to(
        self,
        shard_id: str,
        header: dict[str, Any],
        payload: bytes,
        timeout_s: float | None = None,
    ) -> tuple[dict[str, Any], bytes]:
        """One logical request to one shard, one reply back.

        Pipelining shards multiplex over their :class:`ShardChannel`
        (cancellation drains the late reply by id and keeps the
        connection); legacy shards use one pooled connection per
        request, discarded on any error or cancellation.
        """
        handle = self.shard_handles[shard_id]
        budget = (
            timeout_s if timeout_s is not None else self.forward_timeout_s
        )
        channel = await handle.get_channel(
            self.connect_timeout_s, self.max_payload_bytes
        )
        if channel is not None:
            return await channel.request(header, payload, budget)
        conn = await handle.acquire(self.connect_timeout_s)
        try:
            reader, writer = conn
            await protocol.write_frame(writer, header, payload)
            frame = await asyncio.wait_for(
                protocol.read_frame(reader, self.max_payload_bytes),
                timeout=budget,
            )
            if frame is None:
                raise ProtocolError(f"shard {shard_id} closed mid-request")
        except BaseException:
            handle.discard(conn)
            raise
        handle.release(conn)
        return frame

    # -- control plane (router-served ops) ---------------------------------

    def _router_caps(self) -> frozenset[str]:
        """What this router can honor for its clients.

        ``pipeline`` always (dispatch is concurrent per connection).
        ``shm`` only when every shard is a same-host loopback peer —
        then a client's request segment is attachable by whichever
        shard the ring picks, and the router can pass descriptors
        through untouched.
        """
        caps = {protocol.CAP_PIPELINE}
        if shm_enabled() and self.shard_handles and all(
            h.host == "localhost" or h.host.startswith("127.")
            or h.host == "::1"
            for h in self.shard_handles.values()
        ):
            caps.add(protocol.CAP_SHM)
        return frozenset(caps)

    def _hello(self, header: dict[str, Any]) -> dict[str, Any]:
        want = header.get(protocol.CAPS_FIELD)
        want = set(want) if isinstance(want, list) else set()
        granted = sorted(want & self._router_caps())
        return {
            "status": "ok",
            "role": "router",
            protocol.CAPS_FIELD: granted,
        }

    def _health(self) -> dict[str, Any]:
        serving = self.membership.serving()
        return {
            "status": "ok",
            "role": "router",
            "draining": self.draining,
            "uptime_s": time.perf_counter() - self._started,
            "requests_total": self._requests_total,
            "shards_total": len(self.shard_handles),
            "shards_serving": len(serving),
            "serving": serving,
        }

    def _cluster(self) -> dict[str, Any]:
        """The CLUSTER op: topology, membership, and ring shares."""
        return {
            "status": "ok",
            "role": "router",
            "uptime_s": time.perf_counter() - self._started,
            "requests_total": self._requests_total,
            "hedge_after_s": self.hedge_after_s,
            "shards": [
                {**h.to_dict(),
                 **self.membership.shard(h.shard_id).to_dict()}
                for h in (self.shard_handles[k]
                          for k in sorted(self.shard_handles))
            ],
            "membership": self.membership.to_dict(),
            "ring": {
                "replicas": self.ring.replicas,
                "nodes": self.ring.nodes,
                "shares": self.ring.shares(1024),
            },
        }

    async def _shard_control(self, op: str) -> dict[str, dict[str, Any]]:
        """Fan one control op out to every serving shard; tolerate losses."""
        serving = self.membership.serving()

        async def one(shard_id: str):
            try:
                return shard_id, await self._forward_to(
                    shard_id, {"op": op}, b"", timeout_s=self.probe_timeout_s
                )
            except (OSError, ProtocolError, asyncio.TimeoutError) as exc:
                return shard_id, (
                    {"status": "error",
                     "error": f"{type(exc).__name__}: {exc}"},
                    b"",
                )

        gathered = await asyncio.gather(*(one(s) for s in serving))
        return {shard_id: frame for shard_id, frame in gathered}

    async def _fleet_stats(self) -> dict[str, Any]:
        """STATS, fleet-wide: per-shard snapshots plus merged totals."""
        per_shard = {
            shard_id: header
            for shard_id, (header, _) in (await self._shard_control("stats")).items()
        }
        fleet_requests = sum(
            int(s.get("requests_total", 0)) for s in per_shard.values()
        )
        window = list(self._latencies)
        latency: dict[str, Any] = {
            "window": len(window), "window_n": len(window)
        }
        if window:
            latency.update(
                p50_ms=_percentile(window, 50) * 1e3,
                p99_ms=_percentile(window, 99) * 1e3,
                mean_ms=sum(window) / len(window) * 1e3,
            )
        tm = get_telemetry()
        return {
            "status": "ok",
            "role": "router",
            "uptime_s": time.perf_counter() - self._started,
            "requests_total": self._requests_total,
            "requests_inflight": max(0, self._inflight - 1),  # excl. STATS
            "latency": latency,
            "fleet": {
                "shards_serving": len(per_shard),
                "requests_total": fleet_requests,
                "shards": per_shard,
            },
            "metrics": tm.metrics.snapshot() if tm.enabled else {},
        }

    async def _fleet_metrics(self) -> tuple[str, str]:
        """METRICS, fleet-wide: every shard's exposition + the router's.

        Each shard's samples gain a ``shard="<id>"`` label; the router's
        own registry is rendered with ``shard="router"`` — one scrape of
        the router is one consistent picture of the whole fleet.
        """
        from repro.telemetry.exposition import (
            PROM_CONTENT_TYPE,
            relabel_exposition,
            render_prometheus,
        )

        tm = get_telemetry()
        parts = [render_prometheus(
            tm.metrics if tm.enabled else None,
            extra_gauges={
                "router_uptime_seconds":
                    time.perf_counter() - self._started,
                "router_shards_serving_now":
                    float(len(self.membership.serving())),
            },
            extra_labels={"shard": "router"},
        )]
        for shard_id, (header, body) in sorted(
            (await self._shard_control("metrics")).items()
        ):
            if header.get("status") != "ok":
                continue
            parts.append(relabel_exposition(
                body.decode("utf-8"), {"shard": shard_id}
            ))
        # Shards share metric families; keep one # TYPE line per family
        # across the concatenated parts (the format allows it only once).
        lines: list[str] = []
        typed: set[str] = set()
        for line in "".join(parts).splitlines():
            if line.startswith("# TYPE "):
                if line in typed:
                    continue
                typed.add(line)
            lines.append(line)
        text = "\n".join(lines) + ("\n" if lines else "")
        return text, PROM_CONTENT_TYPE


class ClusterThread:
    """Run a :class:`ClusterRouter` (and its fleet) on a background thread.

    The embedding entry point for tests and benchmarks::

        with ClusterThread(spawn=2, hedge_after_s=0.5) as cluster:
            with ServiceClient(port=cluster.port) as client:
                ...

    Context exit drains the router, which SIGTERM-drains any spawned
    shards.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.router = ClusterRouter(**kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.router.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self.loop.run_until_complete(
                self.router.serve(install_signal_handlers=False)
            )
        finally:
            self.loop.close()

    @property
    def port(self) -> int:
        return self.router.port

    def start(self) -> "ClusterThread":
        self.thread.start()
        self._ready.wait(timeout=120)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise ServiceError("cluster router failed to start in 120s")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.router.request_drain)
            self.thread.join(timeout)
            if self.thread.is_alive():
                raise ServiceError("cluster router did not drain in time")

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
