"""MSG1: the length-prefixed wire protocol of the compression service.

One frame carries one request or one reply::

    offset  size  field
    0       4     magic  b"MSG1"
    4       4     header length H   (u32, big-endian)
    8       8     payload length P  (u64, big-endian)
    16      H     header — one UTF-8 JSON object (pure stdlib, no msgpack)
    16+H    P     payload — raw bytes (ndarray data or compressed stream)

The header is the structured part (op, request id, compressor name,
knob values, array dtype/shape); the payload is the bulk part and is
never re-encoded — an ndarray travels as its C-contiguous bytes, a
compressed stream travels verbatim.  JSON costs nothing at these header
sizes (~100 bytes) and keeps the protocol dependency-free and easily
inspectable on the wire.

Every decoder in this module raises :class:`~repro.errors.ProtocolError`
on malformed input — bad magic, oversized lengths, truncation, a header
that is not a JSON object — and never anything else, so the server can
treat any other exception as a bug rather than a hostile peer.

Request headers carry ``op`` plus op-specific fields (see
``docs/SERVICE.md`` for the full table); reply headers carry ``status``
(``"ok"``, ``"error"``, or ``"busy"``) and echo the request ``id``.

Request headers may additionally carry an **optional** ``trace`` field
(:data:`TRACE_FIELD`): a W3C-traceparent-style string linking the
request into a distributed trace (see :mod:`repro.telemetry.context`).
The field is backward- and forward-compatible by construction — JSON
headers tolerate unknown keys, so an old server ignores it and an old
client simply never sends it; a malformed value is ignored rather than
rejected.  The frame format itself is unchanged (still MSG1).

Reply headers may carry an **optional** ``shard`` field
(:data:`SHARD_FIELD`): the identity of the daemon shard that served
the request.  A standalone daemon sends it when started with
``--shard-id``; the cluster router (:mod:`repro.service.cluster`)
stamps it on every routed reply.  Like ``trace``, it is pure metadata —
clients that do not know it ignore it.

**Capabilities and the zero-copy data plane.**  A client may open a
connection with a ``hello`` request carrying :data:`CAPS_FIELD` (a list
of capability names); the reply echoes the subset the server supports.
Two capabilities exist today:

* :data:`CAP_PIPELINE` — the server dispatches frames concurrently, so
  one connection may carry many in-flight requests distinguished by
  their ``id``; replies can arrive out of order.
* :data:`CAP_SHM` — same-host shared-memory payload handoff.  A large
  request payload travels as a published segment: the header carries
  :data:`SHM_FIELD` (name/shape/dtype of a
  :class:`repro.parallel.shm.ShmDescriptor`) and the frame payload is
  empty.  The client may also offer :data:`REPLY_SHM_FIELD`
  (``{"name": ..., "capacity": n}``) — a client-owned scratch segment
  the server writes the bulk reply into, answering with
  :data:`SHM_NBYTES_FIELD` instead of inline payload bytes.  Every
  segment is owned (published, reused, and unlinked) by the *client*;
  the server only ever attaches and detaches, so a dying peer cannot
  leak the other side's memory.  Pre-capability servers ignore the
  unknown ``hello`` op (replying ``bad_op``), which a client treats as
  "no capabilities" and falls back to inline payloads, one in flight.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

import numpy as np

from repro.errors import ProtocolError

#: Frame magic (protocol version 1); bump to MSG2 on incompatible change.
MAGIC = b"MSG1"

#: Optional request-header field carrying a serialized trace context
#: (re-exported from :mod:`repro.telemetry.context` for wire-level docs).
TRACE_FIELD = "trace"

#: Optional reply-header field naming the shard that served the request
#: (set by ``serve --shard-id`` and by the cluster router on routed ops).
SHARD_FIELD = "shard"

#: Request/reply-header field carrying the session id for the stateful
#: ``SESSION_OPEN``/``SESSION_STEP``/``SESSION_CLOSE`` op family
#: (docs/INSITU.md).  The cluster router hashes this field — and nothing
#: else — when routing session ops, so every step of one session lands
#: on the shard that holds its reference snapshot.
SESSION_FIELD = "session"

#: HELLO request/reply field listing capability names.
CAPS_FIELD = "caps"

#: Capability: concurrent per-connection dispatch with out-of-order replies.
CAP_PIPELINE = "pipeline"

#: Capability: same-host shared-memory payload handoff.
CAP_SHM = "shm"

#: Request-header field carrying the payload's shm descriptor
#: (``{"name": ..., "shape": [...], "dtype": ...}``; frame payload empty).
SHM_FIELD = "shm"

#: Request-header field offering a client-owned reply scratch segment
#: (``{"name": ..., "capacity": n}``).
REPLY_SHM_FIELD = "reply_shm"

#: Reply-header field: byte count the server wrote into the offered
#: reply segment (payload travels there instead of inline).
SHM_NBYTES_FIELD = "shm_nbytes"

#: Fixed-size frame prefix: magic + u32 header length + u64 payload length.
PREFIX = struct.Struct(">4sIQ")

#: Headers are small structured metadata; anything bigger is hostile.
MAX_HEADER_BYTES = 1 << 20

#: Payloads below this stay inline even when :data:`CAP_SHM` was
#: negotiated — segment bookkeeping costs more than a small send.  The
#: batcher uses the same threshold for worker-bound publishing.
SHM_MIN_BYTES = 1 << 16

#: Default payload cap (1 GiB); the server makes this configurable.
MAX_PAYLOAD_BYTES = 1 << 30


def encode_header(header: dict[str, Any]) -> bytes:
    """Serialize a header dict to canonical compact JSON bytes."""
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode()


def decode_header(raw: bytes) -> dict[str, Any]:
    """Parse header bytes; :class:`ProtocolError` unless a JSON object."""
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"header is not valid UTF-8 JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"header must be a JSON object, got {type(header).__name__}"
        )
    return header


def encode_frame(header: dict[str, Any], payload: bytes = b"") -> bytes:
    """One complete MSG1 frame as bytes."""
    raw = encode_header(header)
    if len(raw) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large: {len(raw)} bytes")
    return PREFIX.pack(MAGIC, len(raw), len(payload)) + raw + payload


def parse_prefix(
    prefix: bytes, max_payload_bytes: int = MAX_PAYLOAD_BYTES
) -> tuple[int, int]:
    """Validate a 16-byte frame prefix; returns (header_len, payload_len)."""
    if len(prefix) != PREFIX.size:
        raise ProtocolError(
            f"frame prefix truncated: {len(prefix)}/{PREFIX.size} bytes"
        )
    magic, header_len, payload_len = PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} out of range")
    if payload_len > max_payload_bytes:
        raise ProtocolError(
            f"payload length {payload_len} exceeds cap {max_payload_bytes}"
        )
    return header_len, payload_len


def decode_frame(
    buf: bytes, max_payload_bytes: int = MAX_PAYLOAD_BYTES
) -> tuple[dict[str, Any], bytes]:
    """Decode one complete in-memory frame (tests, fuzzing)."""
    header_len, payload_len = parse_prefix(buf[: PREFIX.size], max_payload_bytes)
    expected = PREFIX.size + header_len + payload_len
    if len(buf) != expected:
        raise ProtocolError(f"frame is {len(buf)} bytes, expected {expected}")
    header = decode_header(buf[PREFIX.size : PREFIX.size + header_len])
    return header, buf[PREFIX.size + header_len :]


# -- asyncio stream I/O ------------------------------------------------------


async def read_frame(
    reader, max_payload_bytes: int = MAX_PAYLOAD_BYTES
) -> tuple[dict[str, Any], bytes] | None:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF *before* a frame starts; raises
    :class:`ProtocolError` on EOF mid-frame or malformed content.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)} bytes)"
        ) from exc
    header_len, payload_len = parse_prefix(prefix, max_payload_bytes)
    try:
        raw = await reader.readexactly(header_len + payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    header = decode_header(raw[:header_len])
    return header, raw[header_len:]


#: Payloads at or above this size are written as a separate buffer
#: instead of being concatenated into one frame bytes object — at data
#: plane sizes the concat is a measurable extra copy per frame.
_WRITE_SPLIT_BYTES = 1 << 16


async def write_frame(writer, header: dict[str, Any], payload: bytes = b"") -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    if len(payload) >= _WRITE_SPLIT_BYTES:
        raw = encode_header(header)
        if len(raw) > MAX_HEADER_BYTES:
            raise ProtocolError(f"header too large: {len(raw)} bytes")
        writer.write(PREFIX.pack(MAGIC, len(raw), len(payload)) + raw)
        writer.write(payload)
    else:
        writer.write(encode_frame(header, payload))
    await writer.drain()


# -- blocking socket I/O (client side) ---------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed with {remaining}/{n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(
    sock: socket.socket, max_payload_bytes: int = MAX_PAYLOAD_BYTES
) -> tuple[dict[str, Any], bytes]:
    """Read one frame from a blocking socket."""
    header_len, payload_len = parse_prefix(
        _recv_exactly(sock, PREFIX.size), max_payload_bytes
    )
    raw = _recv_exactly(sock, header_len + payload_len)
    return decode_header(raw[:header_len]), raw[header_len:]


def write_frame_sock(
    sock: socket.socket, header: dict[str, Any], payload: bytes = b""
) -> None:
    """Write one frame to a blocking socket."""
    if len(payload) >= _WRITE_SPLIT_BYTES:
        raw = encode_header(header)
        if len(raw) > MAX_HEADER_BYTES:
            raise ProtocolError(f"header too large: {len(raw)} bytes")
        sock.sendall(PREFIX.pack(MAGIC, len(raw), len(payload)) + raw)
        sock.sendall(payload)
    else:
        sock.sendall(encode_frame(header, payload))


# -- ndarray payload helpers -------------------------------------------------


def array_fields(arr: np.ndarray) -> dict[str, Any]:
    """Header fields describing an ndarray payload (dtype + shape)."""
    return {"dtype": arr.dtype.str, "shape": list(arr.shape)}


def pack_array(arr: np.ndarray) -> bytes:
    """An array's raw C-contiguous bytes (the MSG1 payload encoding)."""
    return np.ascontiguousarray(arr).tobytes()


def unpack_array(header: dict[str, Any], payload: bytes) -> np.ndarray:
    """Rebuild the ndarray a header + payload describe.

    The returned array is a read-only zero-copy view over ``payload``
    (compressors only read their input); callers that need to write
    must copy.
    """
    try:
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(s) for s in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad array header: {exc}") from exc
    expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
    if np.prod(shape) == 0:
        expected = 0
    if len(payload) != expected:
        raise ProtocolError(
            f"array payload is {len(payload)} bytes, "
            f"dtype/shape require {expected}"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape)


# -- shared-memory handoff header fields -------------------------------------


def shm_fields(desc) -> dict[str, Any]:
    """The :data:`SHM_FIELD` value describing one published segment."""
    return {
        "name": desc.name,
        "shape": list(desc.shape),
        "dtype": str(desc.dtype),
    }


def parse_shm(value: Any):
    """Validate a :data:`SHM_FIELD` value into a ``ShmDescriptor``.

    Raises :class:`ProtocolError` on anything malformed — a truncated or
    hostile descriptor must surface as a per-request protocol error, not
    as an arbitrary exception inside the daemon.
    """
    from repro.parallel.shm import ShmDescriptor

    if not isinstance(value, dict):
        raise ProtocolError(
            f"shm field must be an object, got {type(value).__name__}"
        )
    name = value.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("shm field needs a non-empty segment name")
    shape_raw = value.get("shape")
    if not isinstance(shape_raw, (list, tuple)):
        raise ProtocolError("shm field needs a shape list")
    try:
        shape = tuple(int(s) for s in shape_raw)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad shm shape: {exc}") from exc
    if any(s < 0 for s in shape):
        raise ProtocolError(f"bad shm shape: {shape}")
    try:
        dtype = np.dtype(value.get("dtype"))
    except TypeError as exc:
        raise ProtocolError(f"bad shm dtype: {exc}") from exc
    desc = ShmDescriptor(name=name, shape=shape, dtype=dtype.str)
    if desc.nbytes <= 0:
        raise ProtocolError("shm descriptor describes an empty array")
    return desc


def reply_shm_fields(name: str, capacity: int) -> dict[str, Any]:
    """The :data:`REPLY_SHM_FIELD` value offering a reply scratch segment."""
    return {"name": name, "capacity": int(capacity)}


def parse_reply_shm(value: Any) -> tuple[str, int]:
    """Validate a :data:`REPLY_SHM_FIELD` value into ``(name, capacity)``."""
    if not isinstance(value, dict):
        raise ProtocolError(
            f"reply_shm field must be an object, got {type(value).__name__}"
        )
    name = value.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("reply_shm field needs a non-empty segment name")
    capacity = value.get("capacity")
    if not isinstance(capacity, int) or isinstance(capacity, bool) \
            or capacity <= 0:
        raise ProtocolError(f"bad reply_shm capacity: {capacity!r}")
    return name, capacity
