"""Compression-as-a-service: daemon, wire protocol, and client library.

This package turns the library into a long-lived system under load —
the operational end state the paper's in situ guideline points at: a
simulation (or many) calls into one resident daemon instead of paying
process start-up and codec warm-up per field.

* :mod:`repro.service.protocol` — MSG1, the length-prefixed binary
  frame format (stdlib-JSON header + raw ndarray payload).
* :mod:`repro.service.batch` — bounded admission queue (backpressure),
  request coalescing by configuration, deadline expiry, and dispatch
  through the parallel executor / shared-memory data plane.
* :mod:`repro.service.server` — the asyncio TCP daemon:
  COMPRESS/DECOMPRESS/SWEEP/LIST/HEALTH/STATS, graceful drain on
  SIGTERM, telemetry-backed STATS; :class:`ServiceThread` embeds it.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`
  with connect/busy retry (jittered backoff) and per-call deadlines.
* :mod:`repro.service.cluster` — the multi-node fabric: a
  :class:`ClusterRouter` front-end spreading requests over N daemon
  shards by consistent hash (:mod:`repro.service.ring`), with
  health-gated membership (:mod:`repro.service.membership`), hedging/
  failover, and fleet-wide STATS/METRICS; :class:`ClusterThread`
  embeds it.
* ``python -m repro.service serve|route|compress|stats|health|cluster``
  — the CLI.

See ``docs/SERVICE.md`` for the protocol specification and deployment
tuning, and ``docs/CLUSTER.md`` for the cluster operator's handbook.
"""

from repro.service.client import (
    DEFAULT_PORT,
    PooledClient,
    ServiceClient,
    ServiceSession,
)
from repro.service.cluster import (
    DEFAULT_ROUTER_PORT,
    ClusterRouter,
    ClusterThread,
    routing_key,
)
from repro.service.server import CompressionService, ServiceThread
from repro.service.sessions import Session, SessionTable

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "PooledClient",
    "ServiceClient",
    "ServiceSession",
    "Session",
    "SessionTable",
    "ClusterRouter",
    "ClusterThread",
    "CompressionService",
    "ServiceThread",
    "routing_key",
]
