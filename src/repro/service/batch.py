"""Request batching for the compression daemon.

The daemon's unit of useful work is CPU-bound codec time, but its unit
of *arrival* is one tiny request; dispatching each arrival alone would
pay scheduling and (with workers) process-pool overhead per field.  The
:class:`Batcher` closes that gap:

* every admitted request lands in one bounded :class:`asyncio.Queue`
  (the **admission queue** — its capacity is the backpressure knob; a
  full queue makes the server answer BUSY instead of buffering without
  limit);
* a single consumer task drains whatever is queued, waits one short
  **batch window** for stragglers, and groups the requests by work key
  — ``(op, compressor, options, mode, value)`` for COMPRESS, so
  same-configuration requests become *one* dispatch;
* each group is executed off the event loop through
  :func:`repro.parallel.executor.process_map`; with the server's
  ``workers`` > 1 the group fans out over worker processes and large
  arrays travel through the zero-copy shared-memory transport
  (:mod:`repro.parallel.shm`) instead of task pickles, exactly like a
  CBench sweep;
* requests whose **deadline** passed while queued are answered with a
  deadline error without spending codec time on them.

Results (or exceptions) resolve the per-request futures the connection
handlers await; the batcher never touches sockets.

**Tracing.**  Each admitted request remembers the trace context the
server extracted from its header.  At dispatch time the batcher records
a ``service.queue_wait`` span (admission → dispatch) and a
``service.dispatch`` span (the batch execution, tagged with
``request_id`` and ``batch_size``) under that context, and hands each
worker task a pre-minted child context so codec-stage spans captured in
worker processes re-ingest under the dispatch span — one request, one
connected tree from client socket write to worker Huffman encode.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, CompressorMode
from repro.compressors.registry import get_compressor
from repro.errors import ReproError, ServiceError
from repro.parallel.executor import process_map, resolve_workers
from repro.parallel.shm import (
    ShmDescriptor,
    SharedArray,
    attach_cached,
    attached_view,
    shm_enabled,
)
from repro.service import protocol
from repro.telemetry import context as trace_context
from repro.telemetry import enabled_telemetry, get_telemetry
from repro.telemetry.context import TraceContext

#: Mode → compressor keyword argument carrying the knob value.
KNOB_FOR_MODE = {
    "abs": "error_bound",
    "pw_rel": "pwrel",
    "fixed_rate": "rate",
    "fixed_precision": "precision",
    "fixed_accuracy": "tolerance",
}

#: Arrays below this size are cheaper to pickle than to publish to shm
#: (canonically defined next to the wire fields it gates).
SHM_MIN_BYTES = protocol.SHM_MIN_BYTES


def jsonable(value: Any) -> Any:
    """Deep-convert ``value`` to JSON-encodable builtins.

    Compressor ``meta`` dicts carry numpy scalars and the odd
    non-serializable diagnostic; replies must be pure JSON.  Unknown
    types degrade to ``repr`` rather than failing the reply.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class PendingRequest:
    """One admitted request waiting for (or undergoing) computation."""

    op: str
    header: dict[str, Any]
    payload: bytes
    future: asyncio.Future
    enqueued: float = field(default_factory=time.perf_counter)
    deadline: float | None = None
    #: Trace context of the server-side request span (None when the
    #: client did not propagate one); queue/dispatch/worker spans attach
    #: under it.
    ctx: TraceContext | None = None
    #: Server-assigned monotonically increasing id (span/log tagging).
    request_seq: int = 0
    #: Descriptor of a client-published payload segment (``payload`` is
    #: then empty): the zero-copy data plane.  The batcher hands the
    #: descriptor straight to codec workers — it is *never* re-published.
    shm: ShmDescriptor | None = None

    def group_key(self) -> tuple:
        """Requests with equal keys coalesce into one dispatch."""
        h = self.header
        options = json.dumps(h.get("options") or {}, sort_keys=True)
        if self.op == "compress":
            return ("compress", h.get("compressor"), options,
                    h.get("mode"), h.get("value"))
        if self.op == "decompress":
            return ("decompress", h.get("compressor"), options)
        # Sweeps are heavyweight and carry their own fan-out; never merge.
        return ("sweep", id(self))


# -- module-level (picklable) batch workers ----------------------------------


def _materialize(arr: np.ndarray | ShmDescriptor) -> np.ndarray:
    if isinstance(arr, ShmDescriptor):
        return attach_cached(arr)
    return arr


@contextmanager
def _payload_view(arr: np.ndarray | ShmDescriptor):
    """Yield the task's input array, attaching descriptors *ephemerally*.

    Data-plane segments belong to the client (or to one batch dispatch)
    and are unlinked the moment the request completes — memoizing the
    attachment (:func:`attach_cached`) would pin dead segments' pages in
    a long-lived worker, so the mapping only lives for the codec call.
    Attach failures surface as :class:`ServiceError` (the segment owner
    vanished mid-request), not as a worker crash.
    """
    if isinstance(arr, ShmDescriptor):
        try:
            with attached_view(arr) as view:
                yield view
        except OSError as exc:
            raise ServiceError(
                f"cannot attach payload segment {arr.name!r}: {exc}"
            ) from exc
    else:
        yield arr


#: One worker task: (op-specific body, trace ctx, capture spans?, parent pid).
#: ``ctx`` is this request's pre-minted dispatch-span context; ``capture``
#: asks a *remote* worker (pid != parent) to run under fresh local
#: telemetry and ship its span subtree back for re-ingest.
BatchTask = tuple  # (body, TraceContext | None, bool, int)


def _traced_worker(fn, task: BatchTask) -> tuple[Any, list[dict] | None]:
    """Run ``fn`` on the task body under the task's trace context.

    In the batcher's own process (serial batches, inline ``process_map``)
    the global telemetry is already live and spans land in the server
    tracer directly.  In a worker process the parent's telemetry is not
    active: when span capture was requested, run under a fresh local
    telemetry and return the span subtree (as dicts) for the dispatcher
    to re-ingest under the originating dispatch span.
    """
    body, ctx, capture, parent_pid = task
    remote = os.getpid() != parent_pid
    with trace_context.use(ctx):
        if capture and remote:
            with enabled_telemetry() as tm:
                result = fn(body)
            return result, [s.to_dict() for s in tm.tracer.finished_spans()]
        return fn(body), None


def _compress_task(
    spec: tuple[str, dict, str, float],
    task: BatchTask,
) -> tuple[CompressedBuffer | ReproError, list[dict] | None]:
    """Worker body for one COMPRESS request of a coalesced batch.

    Library errors are *returned*, not raised: one request with, say, an
    integer array must fail alone, not take down the whole batch it was
    coalesced into (the dispatcher resolves exception results into
    per-request error replies).
    """
    name, options, mode, value = spec

    def body(arr):
        try:
            knob = KNOB_FOR_MODE.get(mode)
            if knob is None:
                raise ServiceError(
                    f"unknown mode {mode!r}; known: {sorted(KNOB_FOR_MODE)}"
                )
            compressor = get_compressor(name, **options)
            with _payload_view(arr) as view:
                return compressor.compress(view, mode=mode, **{knob: value})
        except ReproError as exc:
            return exc

    return _traced_worker(body, task)


def _decompress_task(
    spec: tuple[str, dict],
    task: BatchTask,
) -> tuple[np.ndarray | ReproError, list[dict] | None]:
    """Worker body for one DECOMPRESS request of a coalesced batch."""
    name, options = spec

    def body(buf_fields):
        payload, shape, dtype, mode, parameter = buf_fields
        try:
            if isinstance(payload, ShmDescriptor):
                # Compressed streams are consumed as bytes; one copy out
                # of the segment replaces the whole socket round trip.
                with _payload_view(payload) as view:
                    payload = view.tobytes()
            buf = CompressedBuffer(
                payload=payload,
                original_shape=tuple(shape),
                original_dtype=np.dtype(dtype),
                mode=CompressorMode(mode),
                parameter=float(parameter),
            )
            compressor = get_compressor(name, **options)
            return compressor.decompress(buf)
        except ReproError as exc:
            return exc
        except (TypeError, ValueError) as exc:  # bad mode/dtype/shape fields
            return ServiceError(f"bad decompress fields: {exc}")

    return _traced_worker(body, task)


class Batcher:
    """Admission queue + coalescing dispatcher (see module docstring)."""

    def __init__(
        self,
        max_pending: int = 64,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        workers: int | None = None,
    ) -> None:
        self.queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=max(1, max_pending)
        )
        self.batch_window_s = batch_window_s
        self.max_batch = max(1, max_batch)
        self.workers = workers
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- admission (backpressure boundary) --------------------------------

    def admit(self, request: PendingRequest) -> bool:
        """Enqueue without blocking; ``False`` means BUSY (queue full)."""
        tm = get_telemetry()
        if self._closed:
            return False
        try:
            self.queue.put_nowait(request)
        except asyncio.QueueFull:
            tm.count("service.rejected_busy")
            return False
        tm.set_gauge("service.queue_depth", float(self.queue.qsize()))
        return True

    @property
    def depth(self) -> int:
        return self.queue.qsize()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-service-batcher"
            )

    async def drain(self) -> None:
        """Stop admitting, finish everything queued, stop the consumer."""
        self._closed = True
        await self.queue.join()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- consumer ----------------------------------------------------------

    async def _collect(self) -> list[PendingRequest]:
        """One admission wave: first request + window's worth of stragglers."""
        batch = [await self.queue.get()]
        if self.batch_window_s > 0 and len(batch) < self.max_batch:
            await asyncio.sleep(self.batch_window_s)
        while len(batch) < self.max_batch:
            try:
                batch.append(self.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        get_telemetry().set_gauge(
            "service.queue_depth", float(self.queue.qsize())
        )
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            wave = await self._collect()
            try:
                groups: dict[tuple, list[PendingRequest]] = {}
                for request in wave:
                    groups.setdefault(request.group_key(), []).append(request)
                for group in groups.values():
                    await self._dispatch(loop, group)
            finally:
                for _ in wave:
                    self.queue.task_done()

    def _expire(self, group: list[PendingRequest]) -> list[PendingRequest]:
        """Resolve already-dead requests; returns the live remainder."""
        now = time.perf_counter()
        live = []
        for request in group:
            if request.future.cancelled():
                continue
            if request.deadline is not None and now >= request.deadline:
                request.future.set_exception(
                    TimeoutError("deadline expired while queued")
                )
                get_telemetry().count("service.deadline_expired")
            else:
                live.append(request)
        return live

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, group: list[PendingRequest]
    ) -> None:
        group = self._expire(group)
        if not group:
            return
        tm = get_telemetry()
        tm.count("service.batches")
        tm.count("service.batched_requests", len(group))
        tm.observe("service.batch_size", float(len(group)))
        op = group[0].op
        compressor = group[0].header.get("compressor")
        # Pre-mint each request's dispatch-span identity: workers receive
        # it *before* the span itself is recorded, so codec-stage spans
        # captured remotely already carry the right ctx parent when they
        # come back for re-ingest.
        dispatch_ctxs = [r.ctx.child() if r.ctx else None for r in group]
        traced = tm.enabled
        dispatch_start = 0.0
        if traced:
            tracer = tm.tracer
            # PendingRequest.enqueued is raw perf_counter; shift it onto
            # the tracer clock to record the queue-wait span after the fact.
            offset = tracer.now() - time.perf_counter()
            dispatch_start = tracer.now()
            for r in group:
                if r.ctx is not None:
                    tracer.add_span(
                        "service.queue_wait",
                        start=r.enqueued + offset,
                        end=dispatch_start,
                        ctx=r.ctx.child(),
                        root=True,
                        op=r.op,
                        request_id=r.request_seq,
                    )
        capture = traced
        parent_pid = os.getpid()
        try:
            if op == "compress":
                results = await loop.run_in_executor(
                    None,
                    partial(
                        self._run_compress_batch,
                        group, dispatch_ctxs, capture, parent_pid,
                    ),
                )
            elif op == "decompress":
                results = await loop.run_in_executor(
                    None,
                    partial(
                        self._run_decompress_batch,
                        group, dispatch_ctxs, capture, parent_pid,
                    ),
                )
            else:  # one sweep per group by construction
                results = [
                    await loop.run_in_executor(
                        None,
                        partial(
                            self._run_sweep_traced, group[0], dispatch_ctxs[0]
                        ),
                    )
                ]
        except BaseException as exc:  # a batch failure fails every member
            for request in group:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        if traced:
            dispatch_end = tm.tracer.now()
            dispatch_ms = (dispatch_end - dispatch_start) * 1e3
            tm.observe(f'service.dispatch_ms{{op="{op}"}}', dispatch_ms)
            if compressor:
                tm.observe(
                    f'service.dispatch_ms{{op="{op}",'
                    f'compressor="{compressor}"}}',
                    dispatch_ms,
                )
        for request, dctx, (result, wspans) in zip(
            group, dispatch_ctxs, results
        ):
            if traced:
                if wspans:
                    tm.tracer.ingest(wspans)
                if dctx is not None:
                    attrs = {"compressor": compressor} if compressor else {}
                    tm.tracer.add_span(
                        "service.dispatch",
                        start=dispatch_start,
                        end=dispatch_end,
                        ctx=dctx,
                        root=True,
                        op=op,
                        request_id=request.request_seq,
                        batch_size=len(group),
                        **attrs,
                    )
            if not request.future.done():
                if isinstance(result, BaseException):
                    request.future.set_exception(result)
                else:
                    request.future.set_result(result)

    # -- batch bodies (run on the default thread-pool executor) ------------

    def _run_compress_batch(
        self,
        group: list[PendingRequest],
        ctxs: list[TraceContext | None],
        capture: bool,
        parent_pid: int,
    ) -> list:
        h = group[0].header
        spec = (
            h.get("compressor"),
            dict(h.get("options") or {}),
            h.get("mode"),
            h.get("value"),
        )
        # A request that already arrived through shared memory keeps its
        # descriptor — the worker attaches the *client's* segment, no
        # copy and no re-publish.  Only inline payloads are considered
        # for batch-local publishing below.
        arrays = [
            r.shm if r.shm is not None
            else protocol.unpack_array(r.header, r.payload)
            for r in group
        ]
        nworkers = resolve_workers(self.workers)
        published: list[SharedArray] = []
        bodies: list[Any] = arrays
        if nworkers > 1 and len(group) > 1 and shm_enabled():
            bodies = []
            for arr in arrays:
                if (
                    isinstance(arr, np.ndarray)
                    and arr.nbytes >= SHM_MIN_BYTES
                ):
                    handle = SharedArray.publish(np.ascontiguousarray(arr))
                    published.append(handle)
                    bodies.append(handle.descriptor())
                else:
                    bodies.append(arr)
        tasks = [
            (body, ctx, capture, parent_pid)
            for body, ctx in zip(bodies, ctxs)
        ]
        try:
            return process_map(
                partial(_compress_task, spec), tasks, workers=self.workers
            )
        finally:
            for handle in published:
                handle.unlink()

    def _run_decompress_batch(
        self,
        group: list[PendingRequest],
        ctxs: list[TraceContext | None],
        capture: bool,
        parent_pid: int,
    ) -> list:
        h = group[0].header
        spec = (h.get("compressor"), dict(h.get("options") or {}))
        tasks = [
            (
                (
                    r.shm if r.shm is not None else r.payload,
                    tuple(r.header.get("shape") or ()),
                    r.header.get("dtype"),
                    r.header.get("mode"),
                    r.header.get("parameter"),
                ),
                ctx,
                capture,
                parent_pid,
            )
            for r, ctx in zip(group, ctxs)
        ]
        return process_map(
            partial(_decompress_task, spec), tasks, workers=self.workers
        )

    def _run_sweep_traced(
        self, request: PendingRequest, ctx: TraceContext | None
    ) -> tuple[Any, None]:
        """One sweep under the request's dispatch context.

        ``run_in_executor`` does not propagate contextvars, so the
        executor thread activates the context explicitly; CBench cell
        spans (and, via :func:`process_map`, worker-process subtrees)
        then chain under the dispatch span.
        """
        with trace_context.use(ctx):
            return self._run_sweep(request), None

    def _run_sweep(self, request: PendingRequest):
        """Server-side CBench fan-out for one SWEEP request.

        Imported lazily (CBench pulls in the whole foresight stack) and
        injected by the server via ``sweep_runner`` so the batcher stays
        free of service policy (cache wiring, record shaping).
        """
        if self.sweep_runner is None:
            raise ServiceError("this server does not accept SWEEP")
        return self.sweep_runner(request)

    #: Assigned by the server: callable(PendingRequest) -> list[dict].
    sweep_runner = None
