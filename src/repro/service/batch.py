"""Request batching for the compression daemon.

The daemon's unit of useful work is CPU-bound codec time, but its unit
of *arrival* is one tiny request; dispatching each arrival alone would
pay scheduling and (with workers) process-pool overhead per field.  The
:class:`Batcher` closes that gap:

* every admitted request lands in one bounded :class:`asyncio.Queue`
  (the **admission queue** — its capacity is the backpressure knob; a
  full queue makes the server answer BUSY instead of buffering without
  limit);
* a single consumer task drains whatever is queued, waits one short
  **batch window** for stragglers, and groups the requests by work key
  — ``(op, compressor, options, mode, value)`` for COMPRESS, so
  same-configuration requests become *one* dispatch;
* each group is executed off the event loop through
  :func:`repro.parallel.executor.process_map`; with the server's
  ``workers`` > 1 the group fans out over worker processes and large
  arrays travel through the zero-copy shared-memory transport
  (:mod:`repro.parallel.shm`) instead of task pickles, exactly like a
  CBench sweep;
* requests whose **deadline** passed while queued are answered with a
  deadline error without spending codec time on them.

Results (or exceptions) resolve the per-request futures the connection
handlers await; the batcher never touches sockets.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, CompressorMode
from repro.compressors.registry import get_compressor
from repro.errors import ReproError, ServiceError
from repro.parallel.executor import process_map, resolve_workers
from repro.parallel.shm import ShmDescriptor, SharedArray, attach_cached, shm_enabled
from repro.telemetry import get_telemetry

#: Mode → compressor keyword argument carrying the knob value.
KNOB_FOR_MODE = {
    "abs": "error_bound",
    "pw_rel": "pwrel",
    "fixed_rate": "rate",
    "fixed_precision": "precision",
    "fixed_accuracy": "tolerance",
}

#: Arrays below this size are cheaper to pickle than to publish to shm.
SHM_MIN_BYTES = 1 << 16


def jsonable(value: Any) -> Any:
    """Deep-convert ``value`` to JSON-encodable builtins.

    Compressor ``meta`` dicts carry numpy scalars and the odd
    non-serializable diagnostic; replies must be pure JSON.  Unknown
    types degrade to ``repr`` rather than failing the reply.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class PendingRequest:
    """One admitted request waiting for (or undergoing) computation."""

    op: str
    header: dict[str, Any]
    payload: bytes
    future: asyncio.Future
    enqueued: float = field(default_factory=time.perf_counter)
    deadline: float | None = None

    def group_key(self) -> tuple:
        """Requests with equal keys coalesce into one dispatch."""
        h = self.header
        options = json.dumps(h.get("options") or {}, sort_keys=True)
        if self.op == "compress":
            return ("compress", h.get("compressor"), options,
                    h.get("mode"), h.get("value"))
        if self.op == "decompress":
            return ("decompress", h.get("compressor"), options)
        # Sweeps are heavyweight and carry their own fan-out; never merge.
        return ("sweep", id(self))


# -- module-level (picklable) batch workers ----------------------------------


def _materialize(arr: np.ndarray | ShmDescriptor) -> np.ndarray:
    if isinstance(arr, ShmDescriptor):
        return attach_cached(arr)
    return arr


def _compress_task(
    spec: tuple[str, dict, str, float],
    arr: np.ndarray | ShmDescriptor,
) -> CompressedBuffer | ReproError:
    """Worker body for one COMPRESS request of a coalesced batch.

    Library errors are *returned*, not raised: one request with, say, an
    integer array must fail alone, not take down the whole batch it was
    coalesced into (the dispatcher resolves exception results into
    per-request error replies).
    """
    name, options, mode, value = spec
    try:
        knob = KNOB_FOR_MODE.get(mode)
        if knob is None:
            raise ServiceError(
                f"unknown mode {mode!r}; known: {sorted(KNOB_FOR_MODE)}"
            )
        compressor = get_compressor(name, **options)
        return compressor.compress(_materialize(arr), mode=mode, **{knob: value})
    except ReproError as exc:
        return exc


def _decompress_task(
    spec: tuple[str, dict],
    buf_fields: tuple[bytes, tuple, str, str, float],
) -> np.ndarray | ReproError:
    """Worker body for one DECOMPRESS request of a coalesced batch."""
    name, options = spec
    payload, shape, dtype, mode, parameter = buf_fields
    try:
        buf = CompressedBuffer(
            payload=payload,
            original_shape=tuple(shape),
            original_dtype=np.dtype(dtype),
            mode=CompressorMode(mode),
            parameter=float(parameter),
        )
        compressor = get_compressor(name, **options)
        return compressor.decompress(buf)
    except ReproError as exc:
        return exc
    except (TypeError, ValueError) as exc:  # bad mode/dtype/shape fields
        return ServiceError(f"bad decompress fields: {exc}")


class Batcher:
    """Admission queue + coalescing dispatcher (see module docstring)."""

    def __init__(
        self,
        max_pending: int = 64,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        workers: int | None = None,
    ) -> None:
        self.queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=max(1, max_pending)
        )
        self.batch_window_s = batch_window_s
        self.max_batch = max(1, max_batch)
        self.workers = workers
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- admission (backpressure boundary) --------------------------------

    def admit(self, request: PendingRequest) -> bool:
        """Enqueue without blocking; ``False`` means BUSY (queue full)."""
        tm = get_telemetry()
        if self._closed:
            return False
        try:
            self.queue.put_nowait(request)
        except asyncio.QueueFull:
            tm.count("service.rejected_busy")
            return False
        tm.set_gauge("service.queue_depth", float(self.queue.qsize()))
        return True

    @property
    def depth(self) -> int:
        return self.queue.qsize()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-service-batcher"
            )

    async def drain(self) -> None:
        """Stop admitting, finish everything queued, stop the consumer."""
        self._closed = True
        await self.queue.join()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- consumer ----------------------------------------------------------

    async def _collect(self) -> list[PendingRequest]:
        """One admission wave: first request + window's worth of stragglers."""
        batch = [await self.queue.get()]
        if self.batch_window_s > 0 and len(batch) < self.max_batch:
            await asyncio.sleep(self.batch_window_s)
        while len(batch) < self.max_batch:
            try:
                batch.append(self.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        get_telemetry().set_gauge(
            "service.queue_depth", float(self.queue.qsize())
        )
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            wave = await self._collect()
            try:
                groups: dict[tuple, list[PendingRequest]] = {}
                for request in wave:
                    groups.setdefault(request.group_key(), []).append(request)
                for group in groups.values():
                    await self._dispatch(loop, group)
            finally:
                for _ in wave:
                    self.queue.task_done()

    def _expire(self, group: list[PendingRequest]) -> list[PendingRequest]:
        """Resolve already-dead requests; returns the live remainder."""
        now = time.perf_counter()
        live = []
        for request in group:
            if request.future.cancelled():
                continue
            if request.deadline is not None and now >= request.deadline:
                request.future.set_exception(
                    TimeoutError("deadline expired while queued")
                )
                get_telemetry().count("service.deadline_expired")
            else:
                live.append(request)
        return live

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, group: list[PendingRequest]
    ) -> None:
        group = self._expire(group)
        if not group:
            return
        tm = get_telemetry()
        tm.count("service.batches")
        tm.count("service.batched_requests", len(group))
        tm.observe("service.batch_size", float(len(group)))
        op = group[0].op
        try:
            if op == "compress":
                results = await loop.run_in_executor(
                    None, partial(self._run_compress_batch, group)
                )
            elif op == "decompress":
                results = await loop.run_in_executor(
                    None, partial(self._run_decompress_batch, group)
                )
            else:  # one sweep per group by construction
                results = [
                    await loop.run_in_executor(
                        None, partial(self._run_sweep, group[0])
                    )
                ]
        except BaseException as exc:  # a batch failure fails every member
            for request in group:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        for request, result in zip(group, results):
            if not request.future.done():
                if isinstance(result, BaseException):
                    request.future.set_exception(result)
                else:
                    request.future.set_result(result)

    # -- batch bodies (run on the default thread-pool executor) ------------

    def _run_compress_batch(self, group: list[PendingRequest]) -> list:
        from repro.service import protocol

        h = group[0].header
        spec = (
            h.get("compressor"),
            dict(h.get("options") or {}),
            h.get("mode"),
            h.get("value"),
        )
        arrays = [
            protocol.unpack_array(r.header, r.payload) for r in group
        ]
        nworkers = resolve_workers(self.workers)
        published: list[SharedArray] = []
        tasks: list[Any] = arrays
        if nworkers > 1 and len(group) > 1 and shm_enabled():
            tasks = []
            for arr in arrays:
                if arr.nbytes >= SHM_MIN_BYTES:
                    handle = SharedArray.publish(np.ascontiguousarray(arr))
                    published.append(handle)
                    tasks.append(handle.descriptor())
                else:
                    tasks.append(arr)
        try:
            return process_map(
                partial(_compress_task, spec), tasks, workers=self.workers
            )
        finally:
            for handle in published:
                handle.unlink()

    def _run_decompress_batch(self, group: list[PendingRequest]) -> list:
        h = group[0].header
        spec = (h.get("compressor"), dict(h.get("options") or {}))
        tasks = [
            (
                r.payload,
                tuple(r.header.get("shape") or ()),
                r.header.get("dtype"),
                r.header.get("mode"),
                r.header.get("parameter"),
            )
            for r in group
        ]
        return process_map(
            partial(_decompress_task, spec), tasks, workers=self.workers
        )

    def _run_sweep(self, request: PendingRequest):
        """Server-side CBench fan-out for one SWEEP request.

        Imported lazily (CBench pulls in the whole foresight stack) and
        injected by the server via ``sweep_runner`` so the batcher stays
        free of service policy (cache wiring, record shaping).
        """
        if self.sweep_runner is None:
            raise ServiceError("this server does not accept SWEEP")
        return self.sweep_runner(request)

    #: Assigned by the server: callable(PendingRequest) -> list[dict].
    sweep_runner = None
