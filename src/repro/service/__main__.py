"""``python -m repro.service`` — daemon and client CLI."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
