"""Consistent-hash ring: which shard owns which cache key.

The cluster router (:mod:`repro.service.cluster`) spreads requests over
N daemon shards.  Routing them round-robin would work for throughput
but would scatter repeat requests across the fleet — and the whole
point of the shards' :class:`~repro.cache.ResultCache` is that the
*same* sweep of the *same* field served twice is served warm.  The
classic fix is a consistent-hash ring (Karger et al.; the memcached /
Dynamo placement scheme):

* each shard is hashed to ``replicas`` pseudo-random points on a
  circle (virtual nodes smooth the load between unequal arcs);
* a key is hashed to one point and owned by the first shard point at
  or after it, wrapping around;
* adding or removing one shard only moves the keys in the arcs that
  shard gains or loses — about ``1/N`` of the key space — so a health
  drain does not invalidate every other shard's warm cache.

Hashing is :func:`hashlib.blake2b` over stable byte strings, so ring
placement is deterministic across processes and Python versions — the
property the tests in ``tests/test_ring.py`` lock in, and the reason a
restarted router reaches the same warm shards as its predecessor.

>>> ring = HashRing(["s0", "s1", "s2"])
>>> owner = ring.lookup(b"some cache key")
>>> owner in {"s0", "s1", "s2"}
True
>>> ring.lookup(b"some cache key") == owner         # deterministic
True
>>> ring.preference(b"some cache key", 2)[0] == owner
True
>>> ring.remove(owner)
>>> ring.lookup(b"some cache key") != owner         # moved, predictably
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard.  128 points keeps the largest/smallest
#: ownership share within a few tens of percent of fair for small
#: fleets (the property tests assert the bound).
DEFAULT_REPLICAS = 128


def _point(data: bytes) -> int:
    """A stable 64-bit position on the ring for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over string node ids.

    Not thread-safe; the router mutates it only from its event loop.
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []       # sorted ring positions
        self._owners: dict[int, str] = {}  # position -> node id
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = _point(f"{node}#{i}".encode())
            # Collisions across 64-bit points are ~impossible; keep the
            # first owner if one happens so placement stays deterministic.
            if point in self._owners:
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        dead = [p for p, owner in self._owners.items() if owner == node]
        for point in dead:
            del self._owners[point]
        dead_set = set(dead)
        self._points = [p for p in self._points if p not in dead_set]

    @property
    def nodes(self) -> list[str]:
        """Current node ids, sorted (stable for display and tests)."""
        return sorted(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: bytes | str) -> str:
        """The node owning ``key`` (raises ``LookupError`` on an empty ring)."""
        return self.preference(key, 1)[0]

    def preference(self, key: bytes | str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        Index 0 is the primary owner; the rest are the failover /
        hedging order.  Fewer than ``n`` nodes on the ring returns them
        all.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        if isinstance(key, str):
            key = key.encode()
        start = bisect.bisect_right(self._points, _point(key))
        found: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._points)):
            owner = self._owners[
                self._points[(start + i) % len(self._points)]
            ]
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) >= n:
                    break
        return found

    def shares(self, sample: int = 4096) -> dict[str, float]:
        """Approximate ownership share per node over ``sample`` probe keys.

        Diagnostic only (the CLUSTER op reports it): the fraction of
        ``sample`` deterministic probe keys each node owns.
        """
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        if not self._points or not sample:
            return {node: 0.0 for node in self._nodes}
        for i in range(sample):
            counts[self.lookup(f"probe:{i}".encode())] += 1
        return {node: counts[node] / sample for node in sorted(counts)}
