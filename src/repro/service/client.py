"""Synchronous client for the compression daemon.

:class:`ServiceClient` is the in-situ caller's view of the service: a
blocking socket speaking MSG1 frames, with the operational edges a
simulation loop needs handled inside —

* **connect retry**: the daemon may still be binding when the client
  starts; connection attempts back off within ``connect_timeout_s``;
* **backpressure retry**: a ``busy`` reply (admission queue full) is
  retried with capped exponential backoff *plus jitter* (decorrelating
  a fleet of clients that would otherwise retry in lockstep), honoring
  the server's ``retry_after_ms`` hint, up to ``busy_retries`` times
  before :class:`~repro.errors.ServiceBusyError`;
* **timeouts**: ``request_timeout_s`` bounds each socket wait;
  ``timeout_ms`` per call becomes the server-side queue deadline;
* **zero-copy payload handoff**: against a same-host daemon that
  negotiates the ``shm`` capability (one HELLO round trip on the first
  bulk call), large request payloads travel as pooled shared-memory
  segments and bulk replies come back through a client-owned scratch
  segment — the TCP stream then carries only headers.  Fallback to
  inline bytes is transparent: remote hosts, small arrays,
  ``REPRO_NO_SHM=1``, pre-capability servers, and any per-request shm
  error (the client retries the call inline and stops offering
  segments).  Replies are byte-identical either way.  All segments are
  owned by the client — published once, reused across calls
  (:class:`repro.parallel.shm.SegmentPool`), unlinked on
  :meth:`~ServiceClient.close`; a crashed client's are reclaimed by its
  ``multiprocessing`` resource tracker;
* **distributed tracing**: when telemetry is enabled in the client
  process (or a :mod:`repro.telemetry.context` trace is already
  active), every call runs inside a ``client.<op>`` span — busy
  retries get nested ``client.busy_wait`` spans — and the active
  context travels in the MSG1 header's optional ``trace`` field, so
  the daemon's queue/batch/worker spans stitch under this call in one
  trace (see ``docs/OBSERVABILITY.md``).  With telemetry off and no
  ambient trace, nothing is added to the header and nothing is timed.

Both retry paths share one delay policy —
:func:`repro.util.backoff.backoff_delay` — so the whole fleet
(clients, and the cluster router's membership re-probe) jitters the
same way.

One client owns one socket and is **not** thread-safe — give each
thread its own client (they are cheap; the stress tests do exactly
this).  Use as a context manager to close the socket deterministically.
Construction is free of I/O — the socket dials lazily on the first
call (or on ``__enter__``), so a client can be built before its daemon
is up:

>>> client = ServiceClient(port=7777, busy_retries=3, seed=42)
>>> (client.host, client.port, client.busy_retries)
('127.0.0.1', 7777, 3)
>>> client.close()                     # idempotent, even if never dialed

Against a live daemon (or a cluster router — the client is oblivious
to which one it dialed):

>>> with ServiceClient(port=7777) as client:        # doctest: +SKIP
...     buf = client.compress(field, "sz", mode="abs", value=1e-3)
...     round_tripped = client.decompress(buf)
"""

from __future__ import annotations

import concurrent.futures
import random
import socket
import threading
import time
from typing import Any, Callable

import numpy as np

from repro.compressors.base import CompressedBuffer, CompressorMode
from repro.errors import ProtocolError, ServiceBusyError, ServiceError
from repro.parallel.shm import SegmentPool, shm_enabled
from repro.service import protocol
from repro.telemetry import context as trace_context
from repro.telemetry import get_telemetry
from repro.util.backoff import backoff_delay

DEFAULT_PORT = 9461

#: Extra reply-segment capacity offered on COMPRESS (codec headers can
#: push an incompressible stream slightly past the input size; if even
#: that is exceeded the server just replies inline).
REPLY_SHM_SLACK = 1 << 12

#: Error codes that mean "this peer cannot attach my segments" — the
#: client retries inline and stops offering shm on this connection.
_SHM_ERROR_CODES = frozenset({"shm_attach", "shm_unavailable"})


def _is_loopback(host: str) -> bool:
    return host == "localhost" or host.startswith("127.") or host == "::1"


class ServiceClient:
    """Blocking MSG1 client (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 120.0,
        busy_retries: int = 8,
        retry_base_s: float = 0.02,
        retry_max_s: float = 1.0,
        seed: int | None = None,
        shm: bool | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.busy_retries = busy_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        #: ``None`` = automatic (loopback peers only); ``False`` forces
        #: inline payloads; ``True`` offers shm even to non-loopback
        #: hosts (the error fallback still protects a wrong guess).
        self.shm = shm
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._next_id = 0
        self._caps: frozenset[str] = frozenset()
        self._negotiated = False
        self._shm_broken = False
        self._segments: SegmentPool | None = None

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=max(0.1, deadline - time.monotonic()),
                )
                break
            except OSError as exc:
                attempt += 1
                delay = backoff_delay(
                    attempt,
                    base_s=self.retry_base_s,
                    cap_s=self.retry_max_s,
                    jitter=(0.5, 1.0),
                    rng=self._rng,
                )
                if time.monotonic() + delay >= deadline:
                    raise ServiceError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
                time.sleep(delay)
        sock.settimeout(self.request_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _reset(self) -> None:
        """Drop the socket (the next call redials and renegotiates)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._negotiated = False
        self._caps = frozenset()

    def close(self) -> None:
        """Close the socket and unlink any pooled data-plane segments."""
        self._reset()
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- shm negotiation ----------------------------------------------------

    def _shm_wanted(self) -> bool:
        if self._shm_broken or not shm_enabled():
            return False
        if self.shm is not None:
            return self.shm
        return _is_loopback(self.host)

    def _negotiate(self) -> frozenset[str]:
        """HELLO once per connection; pre-capability servers yield ∅."""
        sock = self._connect()
        if self._negotiated:
            return self._caps
        want = [protocol.CAP_PIPELINE]
        if self._shm_wanted():
            want.append(protocol.CAP_SHM)
        try:
            protocol.write_frame_sock(
                sock, {"op": "hello", protocol.CAPS_FIELD: want}
            )
            reply, _ = protocol.read_frame_sock(sock)
        except (OSError, ProtocolError):
            self._reset()
            raise
        caps = (
            reply.get(protocol.CAPS_FIELD)
            if reply.get("status") == "ok" else None
        )
        self._caps = frozenset(caps if isinstance(caps, list) else ())
        self._negotiated = True
        return self._caps

    def _segment_pool(self) -> SegmentPool:
        if self._segments is None:
            self._segments = SegmentPool()
        return self._segments

    def _use_shm(self, nbytes: int) -> bool:
        """True when this payload should go through shared memory."""
        return (
            nbytes >= protocol.SHM_MIN_BYTES
            and self._shm_wanted()
            and protocol.CAP_SHM in self._negotiate()
        )

    def _shm_body(self, reply: dict[str, Any], body: bytes, reply_seg):
        """The reply's bulk bytes — from the scratch segment if used."""
        n = reply.get(protocol.SHM_NBYTES_FIELD)
        if n is None:
            return body
        if (
            reply_seg is None
            or not isinstance(n, int)
            or not 0 <= n <= reply_seg.nbytes
        ):
            raise ProtocolError(f"bad {protocol.SHM_NBYTES_FIELD}: {n!r}")
        return reply_seg.view((n,), np.uint8).tobytes()

    # -- request plumbing ---------------------------------------------------

    def _roundtrip(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        """One frame out, one frame in; connection errors reset the socket."""
        sock = self._connect()
        try:
            protocol.write_frame_sock(sock, header, payload)
            return protocol.read_frame_sock(sock)
        except (OSError, ProtocolError):
            # The stream is unusable — drop it so the next call redials.
            self._reset()
            raise

    def _request(
        self, header: dict[str, Any], payload: bytes = b""
    ) -> tuple[dict[str, Any], bytes]:
        """Send a request, retrying ``busy`` replies with jittered backoff.

        Traced calls (telemetry enabled, or an ambient trace context)
        run inside a ``client.<op>`` span and carry the context in the
        header; the untraced path is byte-identical to before.
        """
        self._next_id += 1
        header = {**header, "id": self._next_id}
        tm = get_telemetry()
        if not tm.enabled and trace_context.current() is None:
            return self._request_once(header, payload)
        op = header.get("op")
        with trace_context.start_trace():
            with tm.span(f"client.{op}", op=op, bytes=len(payload)):
                # Inject *inside* the span so the daemon parents under it.
                return self._request_once(
                    trace_context.inject(header), payload
                )

    def _request_once(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        """The busy-retry loop around one logical request."""
        tm = get_telemetry()
        for attempt in range(self.busy_retries + 1):
            reply, body = self._roundtrip(header, payload)
            status = reply.get("status")
            if status == "ok":
                return reply, body
            if status == "busy":
                if attempt >= self.busy_retries:
                    break
                delay = backoff_delay(
                    attempt,
                    base_s=self.retry_base_s,
                    cap_s=self.retry_max_s,
                    hint_s=float(reply.get("retry_after_ms", 0)) / 1e3,
                    rng=self._rng,
                )
                with tm.span(
                    "client.busy_wait",
                    attempt=attempt + 1,
                    delay_ms=delay * 1e3,
                    code=reply.get("code", "busy"),
                ):
                    time.sleep(delay)
                continue
            exc = ServiceError(
                f"{header.get('op')} failed "
                f"[{reply.get('code', 'error')}]: {reply.get('error')}"
            )
            exc.code = reply.get("code", "error")  # machine-readable
            raise exc
        raise ServiceBusyError(
            f"server still busy after {self.busy_retries} retries"
        )

    # -- operations ---------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        compressor: str,
        mode: str = "abs",
        value: float = 1e-3,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> CompressedBuffer:
        """Compress ``data`` remotely; returns a real :class:`CompressedBuffer`.

        The buffer is byte-identical to a local
        ``get_compressor(compressor, **options).compress(...)`` call and
        interoperates with it — ``meta["compressor"]`` records the codec
        so :meth:`decompress` can route it back without extra arguments.
        """
        data = np.asarray(data)
        header: dict[str, Any] = {
            "op": "compress",
            "compressor": compressor,
            "mode": mode,
            "value": float(value),
            "options": options or {},
            **protocol.array_fields(data),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        req_seg = reply_seg = None
        pool = None
        try:
            if self._use_shm(data.nbytes):
                arr = np.ascontiguousarray(data)
                pool = self._segment_pool()
                req_seg = pool.acquire(arr.nbytes)
                req_seg.view(arr.shape, arr.dtype)[...] = arr
                header[protocol.SHM_FIELD] = protocol.shm_fields(
                    req_seg.view_descriptor(arr.shape, arr.dtype)
                )
                reply_seg = pool.acquire(arr.nbytes + REPLY_SHM_SLACK)
                header[protocol.REPLY_SHM_FIELD] = protocol.reply_shm_fields(
                    reply_seg.name, reply_seg.nbytes
                )
                payload = b""
            else:
                payload = protocol.pack_array(data)
            try:
                reply, body = self._request(header, payload)
            except ServiceError as exc:
                if req_seg is not None \
                        and getattr(exc, "code", None) in _SHM_ERROR_CODES:
                    self._shm_broken = True
                    return self.compress(
                        data, compressor, mode=mode, value=value,
                        options=options, timeout_ms=timeout_ms,
                    )
                raise
            body = self._shm_body(reply, body, reply_seg)
        finally:
            for seg in (req_seg, reply_seg):
                if seg is not None:
                    pool.release(seg)
        meta = dict(reply.get("meta") or {})
        meta["compressor"] = reply.get("compressor", compressor)
        if options:
            meta["options"] = dict(options)
        return CompressedBuffer(
            payload=body,
            original_shape=tuple(reply["shape"]),
            original_dtype=np.dtype(reply["dtype"]),
            mode=CompressorMode(reply["mode"]),
            parameter=float(reply["parameter"]),
            meta=meta,
        )

    def decompress(
        self,
        buf: CompressedBuffer,
        compressor: str | None = None,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> np.ndarray:
        """Decompress a buffer remotely (codec from ``buf.meta`` by default)."""
        name = compressor or buf.meta.get("compressor")
        if not name:
            raise ServiceError(
                "decompress needs a compressor (none recorded in buf.meta)"
            )
        if options is None:
            options = buf.meta.get("options") or {}
        header: dict[str, Any] = {
            "op": "decompress",
            "compressor": name,
            "options": options,
            "mode": buf.mode.value,
            "parameter": buf.parameter,
            "dtype": np.dtype(buf.original_dtype).str,
            "shape": list(buf.original_shape),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        out_shape = tuple(int(s) for s in buf.original_shape)
        out_dtype = np.dtype(buf.original_dtype)
        out_nbytes = int(np.prod(out_shape, dtype=np.int64)) * out_dtype.itemsize
        stream = np.frombuffer(buf.payload, dtype=np.uint8)
        req_seg = reply_seg = None
        pool = None
        try:
            if self._use_shm(max(stream.nbytes, out_nbytes)):
                pool = self._segment_pool()
                if stream.nbytes >= protocol.SHM_MIN_BYTES:
                    req_seg = pool.acquire(stream.nbytes)
                    req_seg.view(stream.shape, np.uint8)[...] = stream
                    header[protocol.SHM_FIELD] = protocol.shm_fields(
                        req_seg.view_descriptor(stream.shape, np.uint8)
                    )
                    payload = b""
                else:
                    payload = buf.payload
                if out_nbytes >= protocol.SHM_MIN_BYTES:
                    reply_seg = pool.acquire(out_nbytes)
                    header[protocol.REPLY_SHM_FIELD] = (
                        protocol.reply_shm_fields(reply_seg.name,
                                                  reply_seg.nbytes)
                    )
            else:
                payload = buf.payload
            try:
                reply, body = self._request(header, payload)
            except ServiceError as exc:
                if (req_seg is not None or reply_seg is not None) \
                        and getattr(exc, "code", None) in _SHM_ERROR_CODES:
                    self._shm_broken = True
                    return self.decompress(
                        buf, compressor=compressor, options=options,
                        timeout_ms=timeout_ms,
                    )
                raise
            n = reply.get(protocol.SHM_NBYTES_FIELD)
            if n is not None and reply_seg is not None:
                if not isinstance(n, int) or n != out_nbytes:
                    raise ProtocolError(
                        f"bad {protocol.SHM_NBYTES_FIELD}: {n!r}"
                    )
                return reply_seg.view(out_shape, out_dtype).copy()
            return protocol.unpack_array(reply, body).copy()
        finally:
            for seg in (req_seg, reply_seg):
                if seg is not None:
                    pool.release(seg)

    def sweep(
        self,
        data: np.ndarray,
        sweeps: list[dict[str, Any]],
        field: str = "field",
        timeout_ms: float | None = None,
    ) -> list[dict[str, Any]]:
        """Run a server-side CBench sweep over ``data``; returns flat rows.

        ``sweeps`` entries mirror the Foresight config compressor list:
        ``{"name": "sz", "mode": "abs", "sweep": {"error_bound": [...]}}``.
        Repeat sweeps of the same data hit the server's result cache
        (``row["cache"] == "hit"``).
        """
        data = np.asarray(data)
        header: dict[str, Any] = {
            "op": "sweep",
            "field": field,
            "sweeps": sweeps,
            **protocol.array_fields(data),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        req_seg = None
        pool = None
        try:
            if self._use_shm(data.nbytes):
                arr = np.ascontiguousarray(data)
                pool = self._segment_pool()
                req_seg = pool.acquire(arr.nbytes)
                req_seg.view(arr.shape, arr.dtype)[...] = arr
                header[protocol.SHM_FIELD] = protocol.shm_fields(
                    req_seg.view_descriptor(arr.shape, arr.dtype)
                )
                payload = b""
            else:
                payload = protocol.pack_array(data)
            try:
                reply, _ = self._request(header, payload)
            except ServiceError as exc:
                if req_seg is not None \
                        and getattr(exc, "code", None) in _SHM_ERROR_CODES:
                    self._shm_broken = True
                    return self.sweep(
                        data, sweeps, field=field, timeout_ms=timeout_ms
                    )
                raise
        finally:
            if req_seg is not None:
                pool.release(req_seg)
        return list(reply.get("records") or [])

    # -- stateful sessions (docs/INSITU.md) ---------------------------------

    def session_open(
        self,
        compressor: str = "sz",
        mode: str = "abs",
        value: float = 1e-3,
        options: dict[str, Any] | None = None,
        keyframe_every: int = 8,
        session_id: str | None = None,
    ) -> "ServiceSession":
        """Open a stateful temporal-compression stream on the daemon.

        The session id is generated *client-side* by default: the
        cluster router hashes it for shard placement, so the id must be
        fixed before the SESSION_OPEN frame is routed (a server-chosen
        id could land the open on one shard and the steps on another).
        Returns a :class:`ServiceSession`; use it as a context manager
        so the daemon-side state is torn down deterministically.
        """
        if session_id is None:
            import uuid

            session_id = uuid.uuid4().hex
        header: dict[str, Any] = {
            "op": "session_open",
            protocol.SESSION_FIELD: session_id,
            "compressor": compressor,
            "mode": mode,
            "value": float(value),
            "options": options or {},
            "keyframe_every": int(keyframe_every),
        }
        reply, _ = self._request(header)
        return ServiceSession(self, reply)

    def session_step(
        self,
        session_id: str,
        data: np.ndarray,
        expect_ref: str | None = ...,
        timeout_ms: float | None = None,
    ) -> tuple[dict[str, Any], bytes]:
        """One snapshot through an open session; returns (reply, TMP1 bytes).

        ``expect_ref`` is the reference digest the client believes the
        daemon holds (``None`` before the first step); the daemon
        refuses with ``session_desync`` on mismatch.  Pass the default
        sentinel to skip the check entirely.  Most callers want the
        :class:`ServiceSession` wrapper, which tracks the digest chain
        automatically.
        """
        data = np.asarray(data)
        header: dict[str, Any] = {
            "op": "session_step",
            protocol.SESSION_FIELD: session_id,
            **protocol.array_fields(data),
        }
        if expect_ref is not ...:
            header["expect_ref"] = expect_ref
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        req_seg = reply_seg = None
        pool = None
        try:
            if self._use_shm(data.nbytes):
                arr = np.ascontiguousarray(data)
                pool = self._segment_pool()
                req_seg = pool.acquire(arr.nbytes)
                req_seg.view(arr.shape, arr.dtype)[...] = arr
                header[protocol.SHM_FIELD] = protocol.shm_fields(
                    req_seg.view_descriptor(arr.shape, arr.dtype)
                )
                reply_seg = pool.acquire(arr.nbytes + REPLY_SHM_SLACK)
                header[protocol.REPLY_SHM_FIELD] = protocol.reply_shm_fields(
                    reply_seg.name, reply_seg.nbytes
                )
                payload = b""
            else:
                payload = protocol.pack_array(data)
            try:
                reply, body = self._request(header, payload)
            except ServiceError as exc:
                if req_seg is not None \
                        and getattr(exc, "code", None) in _SHM_ERROR_CODES:
                    self._shm_broken = True
                    return self.session_step(
                        session_id, data, expect_ref=expect_ref,
                        timeout_ms=timeout_ms,
                    )
                raise
            body = self._shm_body(reply, body, reply_seg)
        finally:
            for seg in (req_seg, reply_seg):
                if seg is not None:
                    pool.release(seg)
        return reply, body

    def session_close(self, session_id: str) -> dict[str, Any]:
        """Tear down a session; returns its step/byte accounting."""
        reply, _ = self._request(
            {"op": "session_close", protocol.SESSION_FIELD: session_id}
        )
        return reply

    def list_compressors(self) -> list[str]:
        reply, _ = self._request({"op": "list"})
        return list(reply.get("compressors") or [])

    def health(self) -> dict[str, Any]:
        reply, _ = self._request({"op": "health"})
        return reply

    def stats(self) -> dict[str, Any]:
        reply, _ = self._request({"op": "stats"})
        return reply

    def metrics_text(self) -> str:
        """The daemon's metrics in Prometheus text exposition format.

        Against a cluster router this is the *fleet* exposition: every
        per-shard sample gains a ``shard="..."`` label and the router's
        own metrics appear under ``shard="router"``.
        """
        _, body = self._request({"op": "metrics"})
        return body.decode("utf-8")

    def cluster(self) -> dict[str, Any]:
        """Topology and membership of the cluster router this client dialed.

        Only a :class:`repro.service.cluster.ClusterRouter` answers the
        CLUSTER op — a plain daemon replies with ``bad_op``, which
        surfaces here as :class:`~repro.errors.ServiceError`.  The reply
        carries per-shard membership state, probe/hedge counters, and
        ring ownership shares (see ``docs/CLUSTER.md``).
        """
        reply, _ = self._request({"op": "cluster"})
        return reply


class ServiceSession:
    """Client half of one open temporal stream (see docs/INSITU.md).

    Tracks the reference-digest chain the daemon echoes on every step
    and sends it back as ``expect_ref`` on the next one, so a lost or
    reordered step surfaces as a clean ``session_desync`` error instead
    of silently undecodable deltas.  :meth:`step` returns the reply
    header and the raw TMP1 stream; feed the streams in order to a
    :class:`~repro.compressors.temporal.TemporalCompressor` (same inner
    codec and options) to reconstruct — bytes are identical to the
    library path.

        with client.session_open("sz", value=1e-3) as session:
            for snapshot in simulation:
                reply, stream = session.step(snapshot)
    """

    def __init__(self, client: ServiceClient, opened: dict[str, Any]) -> None:
        self._client = client
        self.session_id = str(opened[protocol.SESSION_FIELD])
        self.compressor = opened.get("compressor")
        self.mode = opened.get("mode")
        self.value = opened.get("value")
        self.keyframe_every = opened.get("keyframe_every")
        #: Digest of the reference snapshot the daemon holds (None
        #: before the first step); updated from every step reply.
        self.ref: str | None = None
        self.steps = 0
        self.closed = False

    def step(
        self, data: np.ndarray, timeout_ms: float | None = None
    ) -> tuple[dict[str, Any], bytes]:
        """Push one snapshot; returns ``(reply header, TMP1 bytes)``."""
        if self.closed:
            raise ServiceError(f"session {self.session_id!r} is closed")
        reply, body = self._client.session_step(
            self.session_id, data, expect_ref=self.ref,
            timeout_ms=timeout_ms,
        )
        self.ref = reply.get("ref")
        self.steps += 1
        return reply, body

    def close(self) -> dict[str, Any]:
        """Close the daemon-side session (idempotent client-side)."""
        if self.closed:
            return {"status": "ok", protocol.SESSION_FIELD: self.session_id}
        self.closed = True
        return self._client.session_close(self.session_id)

    def __enter__(self) -> "ServiceSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        # Best-effort teardown: the daemon's idle eviction is the
        # backstop if the close cannot be delivered (dead shard, drain).
        try:
            self.close()
        except (ServiceError, OSError):
            pass


# ---------------------------------------------------------------------------
# Multiplexing client pool
# ---------------------------------------------------------------------------


class _Call:
    """One logical request in flight through a :class:`PooledClient`."""

    __slots__ = (
        "future", "finish", "build", "header", "payload", "segs",
        "attempt", "deadline", "id",
    )

    def __init__(self, future, finish, build, header, payload, segs):
        self.future = future
        self.finish = finish
        self.build = build
        self.header = header
        self.payload = payload
        self.segs = segs
        self.attempt = 0
        self.deadline = 0.0
        self.id = 0


class _Channel:
    """One pipelined connection: a send lock, an id→call map, a reader."""

    def __init__(self, owner: "PooledClient", sock: socket.socket,
                 caps: frozenset[str]) -> None:
        self.owner = owner
        self.sock = sock
        self.caps = caps
        self.lock = threading.Lock()
        self.pending: dict[int, _Call] = {}
        self.next_id = 0
        self.dead = False
        self.reader = threading.Thread(
            target=self._read_loop, name="repro-pooled-reader", daemon=True
        )
        self.reader.start()

    def send(self, call: _Call) -> None:
        """Register ``call`` under a fresh id and write its frame."""
        with self.lock:
            if self.dead:
                raise ServiceError("channel closed")
            self.next_id += 1
            call.id = self.next_id
            call.header = {**call.header, "id": call.id}
            call.deadline = time.monotonic() + self.owner.request_timeout_s
            self.pending[call.id] = call
            try:
                protocol.write_frame_sock(self.sock, call.header, call.payload)
            except OSError as exc:
                self.pending.pop(call.id, None)
                raise ServiceError(f"send failed: {exc}") from exc

    def _read_loop(self) -> None:
        while True:
            try:
                reply, body = protocol.read_frame_sock(self.sock)
            except socket.timeout:
                # Idle timeouts are benign (nothing was mid-frame); a
                # timeout with requests outstanding means the server
                # went silent past request_timeout_s — fail the channel.
                with self.lock:
                    idle = not self.pending and not self.dead
                if idle:
                    continue
                self.fail(ServiceError("request timed out"))
                return
            except (OSError, ProtocolError) as exc:
                with self.lock:
                    dead = self.dead
                if not dead:
                    self.fail(ServiceError(f"connection lost: {exc}"))
                return
            self.owner._dispatch(self, reply, body)

    def fail(self, exc: Exception) -> None:
        """Kill the channel, failing every in-flight call with ``exc``."""
        with self.lock:
            if self.dead:
                calls = []
            else:
                self.dead = True
                calls = list(self.pending.values())
                self.pending.clear()
            try:
                self.sock.close()
            except OSError:
                pass
        for call in calls:
            self.owner._finish_call(call, error=exc)


class PooledClient:
    """N requests in flight over M pipelined connections.

    Where :class:`ServiceClient` is strictly one-request-at-a-time,
    ``PooledClient`` multiplexes: every call gets a per-connection
    ``id``, frames are written under a send lock, and a reader thread
    per connection completes futures as replies arrive — in any order.
    ``compress_async``/``decompress_async`` return
    :class:`concurrent.futures.Future`; the blocking ``compress``/
    ``decompress`` wrappers just ``.result()`` them, so one pool serves
    both styles from any number of threads.

    The zero-copy data plane is shared with :class:`ServiceClient`:
    one HELLO per connection negotiates capabilities, large payloads
    ride pooled shared-memory segments (one :class:`SegmentPool` for
    the whole pool), and any shm error falls back to inline bytes for
    the rest of the pool's life.  ``busy`` replies are retried off a
    timer thread with the same jittered backoff as the blocking client,
    so a full admission queue never stalls the reader.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        connections: int = 2,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 120.0,
        busy_retries: int = 8,
        retry_base_s: float = 0.02,
        retry_max_s: float = 1.0,
        seed: int | None = None,
        shm: bool | None = None,
    ) -> None:
        if connections < 1:
            raise ValueError("connections must be >= 1")
        self.host = host
        self.port = port
        self.connections = connections
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.busy_retries = busy_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.shm = shm
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._channels: list[_Channel | None] = [None] * connections
        self._rr = 0
        self._segments = SegmentPool()
        self._shm_broken = False
        self._closed = False

    # -- connections --------------------------------------------------------

    def _dial(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=max(0.1, deadline - time.monotonic()),
                )
                break
            except OSError as exc:
                attempt += 1
                delay = backoff_delay(
                    attempt,
                    base_s=self.retry_base_s,
                    cap_s=self.retry_max_s,
                    jitter=(0.5, 1.0),
                    rng=self._rng,
                )
                if time.monotonic() + delay >= deadline:
                    raise ServiceError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
                time.sleep(delay)
        sock.settimeout(self.request_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _shm_wanted(self) -> bool:
        if self._shm_broken or not shm_enabled():
            return False
        if self.shm is not None:
            return self.shm
        return _is_loopback(self.host)

    def _open_channel(self) -> _Channel:
        """Dial, HELLO synchronously, then hand the socket to a reader."""
        sock = self._dial()
        want = [protocol.CAP_PIPELINE]
        if self._shm_wanted():
            want.append(protocol.CAP_SHM)
        try:
            protocol.write_frame_sock(
                sock, {"op": "hello", protocol.CAPS_FIELD: want}
            )
            reply, _ = protocol.read_frame_sock(sock)
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise ServiceError(f"capability handshake failed: {exc}") from exc
        caps = (
            reply.get(protocol.CAPS_FIELD)
            if reply.get("status") == "ok" else None
        )
        return _Channel(
            self, sock, frozenset(caps if isinstance(caps, list) else ())
        )

    def _next_channel(self) -> _Channel:
        with self._lock:
            if self._closed:
                raise ServiceError("client closed")
            slot = self._rr % self.connections
            self._rr += 1
            chan = self._channels[slot]
            if chan is not None and not chan.dead:
                return chan
            chan = self._open_channel()
            self._channels[slot] = chan
            return chan

    def close(self) -> None:
        """Fail in-flight calls, close every connection, unlink segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = [c for c in self._channels if c is not None]
            self._channels = [None] * self.connections
        for chan in channels:
            chan.fail(ServiceError("client closed"))
        for chan in channels:
            chan.reader.join(timeout=2.0)
        self._segments.close()

    def __enter__(self) -> "PooledClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- completion plumbing (reader / timer threads) -----------------------

    def _release_segs(self, call: _Call) -> None:
        for seg in call.segs:
            self._segments.release(seg)
        call.segs = ()

    def _finish_call(
        self, call: _Call, *, reply: dict[str, Any] | None = None,
        body: bytes = b"", error: Exception | None = None,
    ) -> None:
        try:
            if error is None:
                result = call.finish(reply, body, call)
        finally:
            self._release_segs(call)
        if error is not None:
            call.future.set_exception(error)
        else:
            call.future.set_result(result)

    def _resend(self, chan: _Channel, call: _Call) -> None:
        try:
            chan.send(call)
        except ServiceError as exc:
            self._finish_call(call, error=exc)

    def _dispatch(self, chan: _Channel, reply: dict[str, Any],
                  body: bytes) -> None:
        rid = reply.get("id")
        with chan.lock:
            call = chan.pending.pop(rid, None)
        if call is None:
            return  # late or duplicate reply — drop it
        status = reply.get("status")
        if status == "ok":
            try:
                self._finish_call(call, reply=reply, body=body)
            except Exception as exc:  # finish() raised — surface it
                call.future.set_exception(exc)
            return
        if status == "busy":
            call.attempt += 1
            if call.attempt > self.busy_retries:
                self._finish_call(call, error=ServiceBusyError(
                    f"server still busy after {self.busy_retries} retries"
                ))
                return
            delay = backoff_delay(
                call.attempt - 1,
                base_s=self.retry_base_s,
                cap_s=self.retry_max_s,
                hint_s=float(reply.get("retry_after_ms", 0)) / 1e3,
                rng=self._rng,
            )
            timer = threading.Timer(delay, self._resend, args=(chan, call))
            timer.daemon = True
            timer.start()
            return
        code = reply.get("code", "error")
        if code in _SHM_ERROR_CODES and call.segs:
            # This peer cannot attach our segments — go inline for good.
            self._shm_broken = True
            self._release_segs(call)
            try:
                call.header, call.payload, call.segs = call.build(False)
                chan.send(call)
            except (ServiceError, ProtocolError) as exc:
                self._finish_call(call, error=exc)
            return
        exc = ServiceError(
            f"{call.header.get('op')} failed [{code}]: {reply.get('error')}"
        )
        exc.code = code
        self._finish_call(call, error=exc)

    # -- submission ---------------------------------------------------------

    def _submit(
        self,
        nbytes: int,
        build: Callable[[bool], tuple[dict[str, Any], bytes, tuple]],
        finish: Callable[[dict[str, Any], bytes, _Call], Any],
    ) -> "concurrent.futures.Future":
        future: concurrent.futures.Future = concurrent.futures.Future()
        segs: tuple = ()
        try:
            chan = self._next_channel()
            use_shm = (
                nbytes >= protocol.SHM_MIN_BYTES
                and self._shm_wanted()
                and protocol.CAP_SHM in chan.caps
            )
            header, payload, segs = build(use_shm)
            call = _Call(future, finish, build, header, payload, segs)
            chan.send(call)
        except Exception as exc:
            for seg in segs:
                self._segments.release(seg)
            future.set_exception(exc)
        return future

    # -- operations ---------------------------------------------------------

    def compress_async(
        self,
        data: np.ndarray,
        compressor: str,
        mode: str = "abs",
        value: float = 1e-3,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> "concurrent.futures.Future":
        """Submit a COMPRESS; the future resolves to a CompressedBuffer."""
        data = np.asarray(data)

        def build(use_shm: bool):
            header: dict[str, Any] = {
                "op": "compress",
                "compressor": compressor,
                "mode": mode,
                "value": float(value),
                "options": options or {},
                **protocol.array_fields(data),
            }
            if timeout_ms is not None:
                header["timeout_ms"] = float(timeout_ms)
            if not use_shm:
                return header, protocol.pack_array(data), ()
            arr = np.ascontiguousarray(data)
            req = self._segments.acquire(arr.nbytes)
            req.view(arr.shape, arr.dtype)[...] = arr
            header[protocol.SHM_FIELD] = protocol.shm_fields(
                req.view_descriptor(arr.shape, arr.dtype)
            )
            rep = self._segments.acquire(arr.nbytes + REPLY_SHM_SLACK)
            header[protocol.REPLY_SHM_FIELD] = protocol.reply_shm_fields(
                rep.name, rep.nbytes
            )
            return header, b"", (req, rep)

        def finish(reply: dict[str, Any], body: bytes, call: _Call):
            n = reply.get(protocol.SHM_NBYTES_FIELD)
            if n is not None and len(call.segs) == 2:
                rep = call.segs[1]
                if not isinstance(n, int) or not 0 <= n <= rep.nbytes:
                    raise ProtocolError(
                        f"bad {protocol.SHM_NBYTES_FIELD}: {n!r}"
                    )
                body = rep.view((n,), np.uint8).tobytes()
            meta = dict(reply.get("meta") or {})
            meta["compressor"] = reply.get("compressor", compressor)
            if options:
                meta["options"] = dict(options)
            return CompressedBuffer(
                payload=body,
                original_shape=tuple(reply["shape"]),
                original_dtype=np.dtype(reply["dtype"]),
                mode=CompressorMode(reply["mode"]),
                parameter=float(reply["parameter"]),
                meta=meta,
            )

        return self._submit(data.nbytes, build, finish)

    def decompress_async(
        self,
        buf: CompressedBuffer,
        compressor: str | None = None,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> "concurrent.futures.Future":
        """Submit a DECOMPRESS; the future resolves to an ndarray."""
        name = compressor or buf.meta.get("compressor")
        if not name:
            raise ServiceError(
                "decompress needs a compressor (none recorded in buf.meta)"
            )
        if options is None:
            options = buf.meta.get("options") or {}
        out_shape = tuple(int(s) for s in buf.original_shape)
        out_dtype = np.dtype(buf.original_dtype)
        out_nbytes = (
            int(np.prod(out_shape, dtype=np.int64)) * out_dtype.itemsize
        )
        stream = np.frombuffer(buf.payload, dtype=np.uint8)

        def build(use_shm: bool):
            header: dict[str, Any] = {
                "op": "decompress",
                "compressor": name,
                "options": options,
                "mode": buf.mode.value,
                "parameter": buf.parameter,
                "dtype": out_dtype.str,
                "shape": list(out_shape),
            }
            if timeout_ms is not None:
                header["timeout_ms"] = float(timeout_ms)
            if not use_shm:
                return header, buf.payload, ()
            segs = []
            payload = buf.payload
            if stream.nbytes >= protocol.SHM_MIN_BYTES:
                req = self._segments.acquire(stream.nbytes)
                req.view(stream.shape, np.uint8)[...] = stream
                header[protocol.SHM_FIELD] = protocol.shm_fields(
                    req.view_descriptor(stream.shape, np.uint8)
                )
                segs.append(req)
                payload = b""
            if out_nbytes >= protocol.SHM_MIN_BYTES:
                rep = self._segments.acquire(out_nbytes)
                header[protocol.REPLY_SHM_FIELD] = protocol.reply_shm_fields(
                    rep.name, rep.nbytes
                )
                segs.append(rep)
            return header, payload, tuple(segs)

        def finish(reply: dict[str, Any], body: bytes, call: _Call):
            n = reply.get(protocol.SHM_NBYTES_FIELD)
            if n is not None:
                offered = call.header.get(protocol.REPLY_SHM_FIELD) or {}
                rep = next(
                    (s for s in call.segs if s.name == offered.get("name")),
                    None,
                )
                if rep is None or not isinstance(n, int) or n != out_nbytes:
                    raise ProtocolError(
                        f"bad {protocol.SHM_NBYTES_FIELD}: {n!r}"
                    )
                return rep.view(out_shape, out_dtype).copy()
            return protocol.unpack_array(reply, body).copy()

        return self._submit(max(stream.nbytes, out_nbytes), build, finish)

    def compress(self, *args: Any, **kwargs: Any) -> CompressedBuffer:
        """Blocking wrapper over :meth:`compress_async`."""
        return self.compress_async(*args, **kwargs).result()

    def decompress(self, *args: Any, **kwargs: Any) -> np.ndarray:
        """Blocking wrapper over :meth:`decompress_async`."""
        return self.decompress_async(*args, **kwargs).result()
