"""Synchronous client for the compression daemon.

:class:`ServiceClient` is the in-situ caller's view of the service: a
blocking socket speaking MSG1 frames, with the operational edges a
simulation loop needs handled inside —

* **connect retry**: the daemon may still be binding when the client
  starts; connection attempts back off within ``connect_timeout_s``;
* **backpressure retry**: a ``busy`` reply (admission queue full) is
  retried with capped exponential backoff *plus jitter* (decorrelating
  a fleet of clients that would otherwise retry in lockstep), honoring
  the server's ``retry_after_ms`` hint, up to ``busy_retries`` times
  before :class:`~repro.errors.ServiceBusyError`;
* **timeouts**: ``request_timeout_s`` bounds each socket wait;
  ``timeout_ms`` per call becomes the server-side queue deadline;
* **distributed tracing**: when telemetry is enabled in the client
  process (or a :mod:`repro.telemetry.context` trace is already
  active), every call runs inside a ``client.<op>`` span — busy
  retries get nested ``client.busy_wait`` spans — and the active
  context travels in the MSG1 header's optional ``trace`` field, so
  the daemon's queue/batch/worker spans stitch under this call in one
  trace (see ``docs/OBSERVABILITY.md``).  With telemetry off and no
  ambient trace, nothing is added to the header and nothing is timed.

Both retry paths share one delay policy —
:func:`repro.util.backoff.backoff_delay` — so the whole fleet
(clients, and the cluster router's membership re-probe) jitters the
same way.

One client owns one socket and is **not** thread-safe — give each
thread its own client (they are cheap; the stress tests do exactly
this).  Use as a context manager to close the socket deterministically.
Construction is free of I/O — the socket dials lazily on the first
call (or on ``__enter__``), so a client can be built before its daemon
is up:

>>> client = ServiceClient(port=7777, busy_retries=3, seed=42)
>>> (client.host, client.port, client.busy_retries)
('127.0.0.1', 7777, 3)
>>> client.close()                     # idempotent, even if never dialed

Against a live daemon (or a cluster router — the client is oblivious
to which one it dialed):

>>> with ServiceClient(port=7777) as client:        # doctest: +SKIP
...     buf = client.compress(field, "sz", mode="abs", value=1e-3)
...     round_tripped = client.decompress(buf)
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any

import numpy as np

from repro.compressors.base import CompressedBuffer, CompressorMode
from repro.errors import ProtocolError, ServiceBusyError, ServiceError
from repro.service import protocol
from repro.telemetry import context as trace_context
from repro.telemetry import get_telemetry
from repro.util.backoff import backoff_delay

DEFAULT_PORT = 9461


class ServiceClient:
    """Blocking MSG1 client (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 120.0,
        busy_retries: int = 8,
        retry_base_s: float = 0.02,
        retry_max_s: float = 1.0,
        seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.busy_retries = busy_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._next_id = 0

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=max(0.1, deadline - time.monotonic()),
                )
                break
            except OSError as exc:
                attempt += 1
                delay = backoff_delay(
                    attempt,
                    base_s=self.retry_base_s,
                    cap_s=self.retry_max_s,
                    jitter=(0.5, 1.0),
                    rng=self._rng,
                )
                if time.monotonic() + delay >= deadline:
                    raise ServiceError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
                time.sleep(delay)
        sock.settimeout(self.request_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- request plumbing ---------------------------------------------------

    def _roundtrip(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        """One frame out, one frame in; connection errors reset the socket."""
        sock = self._connect()
        try:
            protocol.write_frame_sock(sock, header, payload)
            return protocol.read_frame_sock(sock)
        except (OSError, ProtocolError):
            # The stream is unusable — drop it so the next call redials.
            self.close()
            raise

    def _request(
        self, header: dict[str, Any], payload: bytes = b""
    ) -> tuple[dict[str, Any], bytes]:
        """Send a request, retrying ``busy`` replies with jittered backoff.

        Traced calls (telemetry enabled, or an ambient trace context)
        run inside a ``client.<op>`` span and carry the context in the
        header; the untraced path is byte-identical to before.
        """
        self._next_id += 1
        header = {**header, "id": self._next_id}
        tm = get_telemetry()
        if not tm.enabled and trace_context.current() is None:
            return self._request_once(header, payload)
        op = header.get("op")
        with trace_context.start_trace():
            with tm.span(f"client.{op}", op=op, bytes=len(payload)):
                # Inject *inside* the span so the daemon parents under it.
                return self._request_once(
                    trace_context.inject(header), payload
                )

    def _request_once(
        self, header: dict[str, Any], payload: bytes
    ) -> tuple[dict[str, Any], bytes]:
        """The busy-retry loop around one logical request."""
        tm = get_telemetry()
        for attempt in range(self.busy_retries + 1):
            reply, body = self._roundtrip(header, payload)
            status = reply.get("status")
            if status == "ok":
                return reply, body
            if status == "busy":
                if attempt >= self.busy_retries:
                    break
                delay = backoff_delay(
                    attempt,
                    base_s=self.retry_base_s,
                    cap_s=self.retry_max_s,
                    hint_s=float(reply.get("retry_after_ms", 0)) / 1e3,
                    rng=self._rng,
                )
                with tm.span(
                    "client.busy_wait",
                    attempt=attempt + 1,
                    delay_ms=delay * 1e3,
                    code=reply.get("code", "busy"),
                ):
                    time.sleep(delay)
                continue
            raise ServiceError(
                f"{header.get('op')} failed "
                f"[{reply.get('code', 'error')}]: {reply.get('error')}"
            )
        raise ServiceBusyError(
            f"server still busy after {self.busy_retries} retries"
        )

    # -- operations ---------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        compressor: str,
        mode: str = "abs",
        value: float = 1e-3,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> CompressedBuffer:
        """Compress ``data`` remotely; returns a real :class:`CompressedBuffer`.

        The buffer is byte-identical to a local
        ``get_compressor(compressor, **options).compress(...)`` call and
        interoperates with it — ``meta["compressor"]`` records the codec
        so :meth:`decompress` can route it back without extra arguments.
        """
        data = np.asarray(data)
        header: dict[str, Any] = {
            "op": "compress",
            "compressor": compressor,
            "mode": mode,
            "value": float(value),
            "options": options or {},
            **protocol.array_fields(data),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        reply, body = self._request(header, protocol.pack_array(data))
        meta = dict(reply.get("meta") or {})
        meta["compressor"] = reply.get("compressor", compressor)
        if options:
            meta["options"] = dict(options)
        return CompressedBuffer(
            payload=body,
            original_shape=tuple(reply["shape"]),
            original_dtype=np.dtype(reply["dtype"]),
            mode=CompressorMode(reply["mode"]),
            parameter=float(reply["parameter"]),
            meta=meta,
        )

    def decompress(
        self,
        buf: CompressedBuffer,
        compressor: str | None = None,
        options: dict[str, Any] | None = None,
        timeout_ms: float | None = None,
    ) -> np.ndarray:
        """Decompress a buffer remotely (codec from ``buf.meta`` by default)."""
        name = compressor or buf.meta.get("compressor")
        if not name:
            raise ServiceError(
                "decompress needs a compressor (none recorded in buf.meta)"
            )
        if options is None:
            options = buf.meta.get("options") or {}
        header: dict[str, Any] = {
            "op": "decompress",
            "compressor": name,
            "options": options,
            "mode": buf.mode.value,
            "parameter": buf.parameter,
            "dtype": np.dtype(buf.original_dtype).str,
            "shape": list(buf.original_shape),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        reply, body = self._request(header, buf.payload)
        return protocol.unpack_array(reply, body).copy()

    def sweep(
        self,
        data: np.ndarray,
        sweeps: list[dict[str, Any]],
        field: str = "field",
        timeout_ms: float | None = None,
    ) -> list[dict[str, Any]]:
        """Run a server-side CBench sweep over ``data``; returns flat rows.

        ``sweeps`` entries mirror the Foresight config compressor list:
        ``{"name": "sz", "mode": "abs", "sweep": {"error_bound": [...]}}``.
        Repeat sweeps of the same data hit the server's result cache
        (``row["cache"] == "hit"``).
        """
        data = np.asarray(data)
        header: dict[str, Any] = {
            "op": "sweep",
            "field": field,
            "sweeps": sweeps,
            **protocol.array_fields(data),
        }
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        reply, _ = self._request(header, protocol.pack_array(data))
        return list(reply.get("records") or [])

    def list_compressors(self) -> list[str]:
        reply, _ = self._request({"op": "list"})
        return list(reply.get("compressors") or [])

    def health(self) -> dict[str, Any]:
        reply, _ = self._request({"op": "health"})
        return reply

    def stats(self) -> dict[str, Any]:
        reply, _ = self._request({"op": "stats"})
        return reply

    def metrics_text(self) -> str:
        """The daemon's metrics in Prometheus text exposition format.

        Against a cluster router this is the *fleet* exposition: every
        per-shard sample gains a ``shard="..."`` label and the router's
        own metrics appear under ``shard="router"``.
        """
        _, body = self._request({"op": "metrics"})
        return body.decode("utf-8")

    def cluster(self) -> dict[str, Any]:
        """Topology and membership of the cluster router this client dialed.

        Only a :class:`repro.service.cluster.ClusterRouter` answers the
        CLUSTER op — a plain daemon replies with ``bad_op``, which
        surfaces here as :class:`~repro.errors.ServiceError`.  The reply
        carries per-shard membership state, probe/hedge counters, and
        ring ownership shares (see ``docs/CLUSTER.md``).
        """
        reply, _ = self._request({"op": "cluster"})
        return reply
