"""Health-gated shard membership: who is in the ring right now.

The router only sends work to shards it believes are alive, and its
belief is driven by evidence — periodic HEALTH probes plus the outcome
of every forwarded request.  :class:`MembershipTable` is that belief as
a pure, synchronous state machine (no sockets, no clock of its own), so
the gating policy is unit-testable without a fleet; the asyncio probe
loop in :mod:`repro.service.cluster` feeds it observations and applies
its verdicts to the :class:`~repro.service.ring.HashRing`.

Per shard the table runs a three-state machine:

* ``up`` — serving; in the ring.
* ``suspect`` — one or more consecutive failures, but fewer than
  ``fail_after``; still in the ring (a single dropped probe on a busy
  box must not trigger a rebalance).
* ``down`` — ``fail_after`` consecutive failures; *drained from the
  ring*.  Probing continues with jittered exponential backoff
  (:func:`repro.util.backoff.backoff_delay` — the same policy the
  client's retry paths use) and ``recover_after`` consecutive
  successes re-admit the shard.

Transitions are reported to the caller as the return value of
:meth:`record_success` / :meth:`record_failure` — ``"drain"`` means
"take it out of the ring now", ``"admit"`` means "put it back" — so the
ring mutation and the verdict can never disagree.

>>> table = MembershipTable(fail_after=2, recover_after=1)
>>> table.add("s0")
'admit'
>>> table.record_failure("s0"), table.state("s0")   # 1 miss: suspect
(None, 'suspect')
>>> table.record_failure("s0"), table.state("s0")   # 2nd miss: drained
('drain', 'down')
>>> table.record_success("s0"), table.state("s0")   # recovery: re-admitted
('admit', 'up')
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Literal

from repro.util.backoff import backoff_delay

__all__ = ["MembershipTable", "ShardHealth"]

Verdict = Literal["admit", "drain", None]


@dataclass
class ShardHealth:
    """Observed health of one shard (see module docstring for states)."""

    shard_id: str
    state: str = "up"
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    #: Totals over the shard's lifetime (CLUSTER op diagnostics).
    probes_total: int = 0
    failures_total: int = 0
    #: Wall time of the last observation (diagnostics only).
    last_seen: float = field(default_factory=time.time)
    last_error: str | None = None

    @property
    def in_ring(self) -> bool:
        return self.state != "down"

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probes_total": self.probes_total,
            "failures_total": self.failures_total,
            "last_seen": self.last_seen,
            "last_error": self.last_error,
        }


class MembershipTable:
    """Failure-evidence accumulator with drain/admit verdicts.

    ``fail_after`` consecutive failures drain a shard; ``recover_after``
    consecutive successes re-admit it.  ``probe_interval_s`` is the
    healthy-shard probe cadence; :meth:`probe_delay` stretches it with
    jittered exponential backoff while a shard stays down, capped at
    ``reprobe_cap_s`` so recovery is still noticed promptly.
    """

    def __init__(
        self,
        *,
        fail_after: int = 3,
        recover_after: int = 2,
        probe_interval_s: float = 0.5,
        reprobe_cap_s: float = 5.0,
        seed: int | None = None,
    ) -> None:
        if fail_after < 1 or recover_after < 1:
            raise ValueError("fail_after and recover_after must be >= 1")
        self.fail_after = fail_after
        self.recover_after = recover_after
        self.probe_interval_s = probe_interval_s
        self.reprobe_cap_s = reprobe_cap_s
        self._rng = random.Random(seed)
        self._shards: dict[str, ShardHealth] = {}

    # -- membership --------------------------------------------------------

    def add(self, shard_id: str) -> Verdict:
        """Register a shard, optimistically ``up`` (idempotent)."""
        if shard_id in self._shards:
            return None
        self._shards[shard_id] = ShardHealth(shard_id)
        return "admit"

    def shard(self, shard_id: str) -> ShardHealth:
        return self._shards[shard_id]

    def state(self, shard_id: str) -> str:
        return self._shards[shard_id].state

    @property
    def shards(self) -> list[ShardHealth]:
        return [self._shards[k] for k in sorted(self._shards)]

    def serving(self) -> list[str]:
        """Shard ids currently eligible for work (up or suspect)."""
        return [s.shard_id for s in self.shards if s.in_ring]

    # -- evidence ----------------------------------------------------------

    def record_success(self, shard_id: str) -> Verdict:
        """A probe or forward succeeded; ``"admit"`` if this re-admits."""
        s = self._shards[shard_id]
        s.probes_total += 1
        s.last_seen = time.time()
        s.last_error = None
        s.consecutive_failures = 0
        s.consecutive_successes += 1
        if s.state == "down":
            if s.consecutive_successes >= self.recover_after:
                s.state = "up"
                return "admit"
            return None
        s.state = "up"
        return None

    def record_failure(self, shard_id: str, error: str = "") -> Verdict:
        """A probe or forward failed; ``"drain"`` if this drains the shard."""
        s = self._shards[shard_id]
        s.probes_total += 1
        s.failures_total += 1
        s.last_seen = time.time()
        s.last_error = error or s.last_error
        s.consecutive_successes = 0
        s.consecutive_failures += 1
        if s.state == "down":
            return None
        if s.consecutive_failures >= self.fail_after:
            s.state = "down"
            return "drain"
        s.state = "suspect"
        return None

    # -- probe scheduling --------------------------------------------------

    def probe_delay(self, shard_id: str) -> float:
        """Seconds until this shard's next probe.

        Healthy (and suspect) shards are probed every
        ``probe_interval_s``.  A down shard is re-probed with jittered
        exponential backoff over the failures *beyond* the drain
        threshold, capped at ``reprobe_cap_s`` — a flapping shard costs
        probe traffic proportional to its flakiness, not to fleet size.
        """
        s = self._shards[shard_id]
        if s.state != "down":
            return self.probe_interval_s
        over = s.consecutive_failures - self.fail_after
        return backoff_delay(
            max(0, over),
            base_s=self.probe_interval_s,
            cap_s=self.reprobe_cap_s,
            jitter=(0.8, 1.2),
            rng=self._rng,
        )

    def to_dict(self) -> dict:
        """The CLUSTER-op membership view."""
        return {
            "fail_after": self.fail_after,
            "recover_after": self.recover_after,
            "probe_interval_s": self.probe_interval_s,
            "shards": [s.to_dict() for s in self.shards],
        }
