"""Command-line interface for the compression service.

::

    python -m repro.service serve   [--host H] [--port P] [--workers N]
                                    [--max-pending N] [--batch-window-ms MS]
                                    [--cache DIR] [--cache-max-bytes BYTES]
                                    [--timeout-s S] [--trace-out PATH]
                                    [--shard-id ID]
                                    [--log-json] [-v | --quiet]
    python -m repro.service route   [--shards H:P,H:P,...] [--spawn N]
                                    [--host H] [--port P]
                                    [--hedge-after-ms MS] [--fail-after K]
                                    [--recover-after K] [--probe-interval-ms MS]
                                    [--workers N] [--cache DIR] ...
    python -m repro.service compress INPUT.npy --compressor NAME
                                    [--mode abs] [--value 1e-3]
                                    [--out OUT.rsz] [--host H] [--port P]
    python -m repro.service stats   [--host H] [--port P]
    python -m repro.service health  [--host H] [--port P]
    python -m repro.service cluster [--host H] [--port P]

``serve`` prints ``serving on HOST:PORT`` on stdout once bound (with
``--port 0`` this is how callers learn the ephemeral port), then runs
until SIGTERM/SIGINT, draining gracefully: admitted requests finish and
receive replies, new ones are refused with a ``busy``/``draining``
frame.  ``--shard-id`` stamps the daemon's identity on every reply
header and Prometheus sample — set it when the daemon is one shard of a
cluster (``docs/CLUSTER.md``).

``route`` runs the cluster router (:mod:`repro.service.cluster`) over a
fleet of shard daemons — pre-started ones via ``--shards``, locally
spawned ones via ``--spawn N`` — and prints ``routing on HOST:PORT``
once bound.  It speaks the same MSG1 protocol as ``serve``, so
``compress``/``stats``/``health``/``cluster`` all work against it.

``compress`` writes the compressed stream to ``--out`` (default: input
path + ``.rsz``) and prints the achieved ratio — a smoke client, not a
replacement for :class:`repro.service.client.ServiceClient`.

``cluster`` dumps the router's CLUSTER op — topology, membership
states, and ring ownership shares — as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.cache import ResultCache
from repro.errors import ReproError
from repro.foresight.cli import configure_logging
from repro.service.client import DEFAULT_PORT, ServiceClient
from repro.service.server import CompressionService


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = None
    if args.cache:
        cache = ResultCache(args.cache, max_bytes=args.cache_max_bytes)
    service = CompressionService(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        batch_window_s=args.batch_window_ms / 1e3,
        max_batch=args.max_batch,
        workers=args.workers,
        cache=cache,
        default_timeout_s=args.timeout_s,
        trace_out=args.trace_out,
        shard_id=args.shard_id,
        backend=args.backend,
        pipeline_depth=args.pipeline_depth,
        max_sessions=args.max_sessions,
        session_idle_s=args.session_idle_s,
    )

    async def _main() -> None:
        await service.start()
        # The bound address is the serve command's product: parseable by
        # wrappers that started us with --port 0.
        print(f"serving on {service.host}:{service.port}", flush=True)
        await service.serve()

    asyncio.run(_main())
    print("drained", flush=True)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service.cluster import DEFAULT_ROUTER_PORT, ClusterRouter

    port = DEFAULT_ROUTER_PORT if args.port is None else args.port
    shard_options = {
        "workers": args.workers,
        "max_pending": args.max_pending,
        "batch_window_ms": args.batch_window_ms,
        "max_batch": args.max_batch,
        "timeout_s": args.timeout_s,
        "cache_dir": args.cache,
        "cache_max_bytes": args.cache_max_bytes,
        "backend": args.backend,
    }
    router = ClusterRouter(
        shards=[s for s in (args.shards or "").split(",") if s],
        spawn=args.spawn,
        host=args.host,
        port=port,
        shard_options={k: v for k, v in shard_options.items() if v is not None},
        hedge_after_s=(
            None if args.hedge_after_ms is None else args.hedge_after_ms / 1e3
        ),
        fail_after=args.fail_after,
        recover_after=args.recover_after,
        probe_interval_s=args.probe_interval_ms / 1e3,
        pipeline_depth=args.pipeline_depth,
        trace_out=args.trace_out,
    )

    async def _main() -> None:
        await router.start()
        print(f"routing on {router.host}:{router.port}", flush=True)
        await router.serve()

    asyncio.run(_main())
    print("drained", flush=True)
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    data = np.load(args.input)
    out = Path(args.out) if args.out else Path(args.input + ".rsz")
    with ServiceClient(host=args.host, port=args.port) as client:
        buf = client.compress(
            data, args.compressor, mode=args.mode, value=args.value
        )
    out.write_bytes(buf.payload)
    print(
        f"{args.input}: {buf.original_nbytes} -> {buf.compressed_nbytes} bytes "
        f"(ratio {buf.compression_ratio:.2f}, {buf.bitrate:.2f} bits/value) "
        f"-> {out}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with ServiceClient(host=args.host, port=args.port) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    with ServiceClient(host=args.host, port=args.port) as client:
        print(json.dumps(client.health(), indent=2, sort_keys=True))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.service.cluster import DEFAULT_ROUTER_PORT

    port = DEFAULT_ROUTER_PORT if args.port is None else args.port
    with ServiceClient(host=args.host, port=port) as client:
        print(json.dumps(client.cluster(), indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Compression-as-a-service daemon and client.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon")
    _add_endpoint_args(serve)
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="batch worker processes (default: $REPRO_WORKERS "
                            "or in-process; 0 = one per CPU)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission queue capacity before BUSY (default 64)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="coalescing window in milliseconds (default 2)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="largest coalesced batch (default 64)")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="result cache directory for SWEEP "
                            "(default: no cache)")
    serve.add_argument("--cache-max-bytes", default=None, metavar="BYTES",
                       help="bound the result cache (K/M/G suffix allowed)")
    serve.add_argument("--pipeline-depth", type=int, default=32, metavar="N",
                       help="max concurrently served frames per connection "
                            "(default 32)")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="default per-request deadline in seconds")
    serve.add_argument("--max-sessions", type=int, default=64, metavar="N",
                       help="bound on concurrently open temporal-compression "
                            "sessions (default 64)")
    serve.add_argument("--session-idle-s", type=float, default=300.0,
                       metavar="S",
                       help="evict a session untouched for this long "
                            "(default 300)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="dump every span (stitched distributed traces "
                            "included) as JSONL here when the daemon drains")
    serve.add_argument("--shard-id", default=None, metavar="ID",
                       help="fleet identity: stamp replies and metrics with "
                            "shard=ID (set by the cluster router's --spawn)")
    serve.add_argument("--backend", default=None, metavar="TIER",
                       choices=("scalar", "numpy", "native", "auto"),
                       help="kernel tier for codec hot paths (default: "
                            "REPRO_BACKEND, else auto)")
    serve.add_argument("--log-json", action="store_true",
                       help="JSON log records stamped with trace/request ids")
    serve.add_argument("--quiet", action="store_true")
    serve.add_argument("-v", "--verbose", action="count", default=0)
    serve.set_defaults(fn=_cmd_serve)

    route = sub.add_parser(
        "route", help="run the cluster router over N shard daemons"
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=None,
                       help="router port (default 9470)")
    route.add_argument("--shards", default=None, metavar="H:P,H:P",
                       help="comma-separated pre-started shard endpoints")
    route.add_argument("--spawn", type=int, default=0, metavar="N",
                       help="spawn N local shard daemons (ephemeral ports)")
    route.add_argument("--hedge-after-ms", type=float, default=None,
                       help="duplicate a slow forward after this budget "
                            "(default: hedging off)")
    route.add_argument("--fail-after", type=int, default=3,
                       help="consecutive probe misses that drain a shard")
    route.add_argument("--recover-after", type=int, default=2,
                       help="consecutive probe hits that re-admit a shard")
    route.add_argument("--pipeline-depth", type=int, default=32, metavar="N",
                       help="max concurrently routed frames per client "
                            "connection (default 32)")
    route.add_argument("--probe-interval-ms", type=float, default=250.0,
                       help="healthy-shard HEALTH probe cadence (default 250)")
    route.add_argument("--trace-out", default=None, metavar="PATH",
                       help="dump router spans as JSONL on drain")
    # Spawned-shard knobs (ignored for --shards endpoints, which were
    # configured by whoever started them).
    route.add_argument("--workers", type=int, default=None, metavar="N")
    route.add_argument("--max-pending", type=int, default=None)
    route.add_argument("--batch-window-ms", type=float, default=None)
    route.add_argument("--max-batch", type=int, default=None)
    route.add_argument("--timeout-s", type=float, default=None)
    route.add_argument("--cache", default=None, metavar="DIR",
                       help="parent dir for per-shard result caches")
    route.add_argument("--cache-max-bytes", default=None, metavar="BYTES")
    route.add_argument("--backend", default=None, metavar="TIER",
                       choices=("scalar", "numpy", "native", "auto"),
                       help="kernel tier for spawned shards")
    route.add_argument("--log-json", action="store_true")
    route.add_argument("--quiet", action="store_true")
    route.add_argument("-v", "--verbose", action="count", default=0)
    route.set_defaults(fn=_cmd_route)

    compress = sub.add_parser("compress", help="compress one .npy file")
    compress.add_argument("input", help="input array (.npy)")
    compress.add_argument("--compressor", required=True)
    compress.add_argument("--mode", default="abs")
    compress.add_argument("--value", type=float, default=1e-3)
    compress.add_argument("--out", default=None)
    _add_endpoint_args(compress)
    compress.set_defaults(fn=_cmd_compress)

    stats = sub.add_parser("stats", help="dump daemon statistics")
    _add_endpoint_args(stats)
    stats.set_defaults(fn=_cmd_stats)

    health = sub.add_parser("health", help="dump daemon health")
    _add_endpoint_args(health)
    health.set_defaults(fn=_cmd_health)

    cluster = sub.add_parser(
        "cluster", help="dump router topology and membership"
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=None,
                         help="router port (default 9470)")
    cluster.set_defaults(fn=_cmd_cluster)

    args = parser.parse_args(argv)
    if args.command in ("serve", "route"):
        configure_logging(verbosity=args.verbose, quiet=args.quiet,
                          json_logs=args.log_json)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
