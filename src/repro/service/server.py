"""The compression daemon: an asyncio TCP server over the batcher.

``CompressionService`` is compression-as-a-service for the library
below it: clients connect over TCP, speak MSG1 frames
(:mod:`repro.service.protocol`), and the server turns their requests
into batched codec work (:mod:`repro.service.batch`) executed through
the same registry / parallel-executor / shm / cache layers the batch
CLIs use — so a byte compressed through the daemon is identical to a
byte compressed through :func:`repro.compressors.registry.get_compressor`
directly.

Operations
----------

============= ================================================================
op            semantics
============= ================================================================
COMPRESS      one ndarray in, one compressed stream out (batched by config)
DECOMPRESS    one compressed stream in, one ndarray out (batched by codec)
SWEEP         server-side CBench cell fan-out over one field; rows out; repeat
              sweeps are served warm from the result cache
SESSION_OPEN  open a stateful temporal-compression stream (docs/INSITU.md);
              the daemon keeps the reference snapshot in its session table
SESSION_STEP  one snapshot in, one delta/keyframe TMP1 stream out; replies
              echo the post-step reference digest so desync fails fast
SESSION_CLOSE tear down a session; returns its step/byte accounting
HELLO         capability negotiation (``pipeline``, ``shm``); never queued
CANCEL        best-effort cancel of a queued request by its ``id``
LIST          registered compressor names
HEALTH        liveness + drain state + queue depth (never queued)
STATS         telemetry counters, batch sizes, bytes in/out, p50/p99 latency,
              open sessions
METRICS       the same registry in Prometheus text exposition format
============= ================================================================

**Pipelining.**  Frames on one connection are dispatched concurrently
(bounded by ``pipeline_depth``); replies are written under a
per-connection lock and may arrive out of request order, correlated by
the echoed ``id``.  A legacy blocking client keeps one request in
flight and so still sees strict ordering.

**Shared-memory handoff.**  A request whose header carries the ``shm``
field ships its payload as a client-published segment (the frame
payload is empty); the daemon attaches it read-only and the batcher
hands the descriptor straight to codec workers — zero serialization
copies client → daemon → worker.  A request offering ``reply_shm``
gets its bulk reply written into that client-owned scratch segment
(header field ``shm_nbytes``) instead of inline bytes.  The daemon
*never* owns a data-plane segment: it attaches, copies, and detaches,
so client death cannot leak daemon memory and daemon death cannot leak
client segments (the client's ``resource_tracker`` covers those).

Control-plane ops (HEALTH/STATS/LIST/METRICS) bypass the admission
queue: a saturated daemon must still answer its monitoring.

**Tracing.**  A request header carrying a ``trace`` field (see
:mod:`repro.telemetry.context`) is served under that distributed trace:
the ``service.request`` span, the batcher's queue-wait/dispatch spans,
and worker-process codec spans all stitch under the client's call span.
``trace_out`` dumps every finished span as JSONL when the daemon drains
(one stitched timeline per traced request).

Backpressure: the admission queue is bounded (``max_pending``); when it
is full the reply is ``status="busy"`` with a suggested
``retry_after_ms`` and the connection stays healthy — the client
library sleeps with jitter and retries.  During **drain** (SIGTERM or
:meth:`CompressionService.request_drain`) new work is refused the same
way with ``code="draining"`` while queued and in-flight requests finish
and get their replies; then ``serve`` returns.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import threading
import time
from collections import deque
from typing import Any

import numpy as np

from repro.cache import ResultCache
from repro.cache.store import data_digest, make_key
from repro.compressors.base import CompressedBuffer, CompressorMode
from repro.compressors.registry import available_compressors
from repro.compressors.temporal import TemporalCompressor
from repro.errors import DataError, ProtocolError, ReproError, ServiceError
from repro.parallel.shm import SharedArray, shm_enabled
from repro.service import protocol
from repro.service.batch import (
    KNOB_FOR_MODE,
    SHM_MIN_BYTES,
    Batcher,
    PendingRequest,
    jsonable,
)
from repro.service.sessions import Session, SessionTable, new_session_id
from repro.telemetry import Telemetry, get_telemetry, set_telemetry
from repro.telemetry import context as trace_context

logger = logging.getLogger("repro.service")

#: Suggested client back-off when the admission queue is full.
DEFAULT_RETRY_AFTER_MS = 50

#: How many recent request latencies the percentile window keeps.
LATENCY_WINDOW = 4096

#: Span retention for a self-installed daemon tracer (unless spans are
#: being kept for a ``trace_out`` dump) — bounds long-run memory while
#: the periodic harvest still sees every span via ``finished_total``.
SPAN_RETENTION = 1 << 16

#: Request-latency histogram bucket edges (milliseconds).
LATENCY_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list (q in [0, 100])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class _ConnectionState:
    """Per-connection pipelining state: reply serialization + CANCEL index.

    With concurrent frame dispatch, replies from many tasks interleave
    on one stream — ``send_lock`` keeps each frame atomic.  ``inflight``
    maps request ``id`` → queued future so a CANCEL frame can revoke a
    sibling request that is still waiting in the admission queue.
    """

    __slots__ = ("send_lock", "inflight")

    def __init__(self) -> None:
        self.send_lock = asyncio.Lock()
        self.inflight: dict[Any, asyncio.Future] = {}

    def cancel(self, target: Any) -> dict[str, Any]:
        """Best-effort cancel of the in-flight request with id ``target``."""
        future = self.inflight.get(target)
        cancelled = bool(future is not None and future.cancel())
        if cancelled:
            get_telemetry().count("service.cancelled")
        return {"status": "ok", "op": "cancel", "cancelled": cancelled}


class CompressionService:
    """Long-lived compression daemon (see module docstring).

    >>> service = CompressionService(port=0)           # doctest: +SKIP
    >>> asyncio.run(service.serve())                   # doctest: +SKIP

    ``workers`` follows the library-wide convention
    (:func:`repro.parallel.executor.resolve_workers`): ``None`` defers
    to ``REPRO_WORKERS`` (unset → in-process serial batches), ``0``
    means one worker process per CPU.  ``cache`` (a directory or
    :class:`~repro.cache.ResultCache`) serves repeat SWEEPs warm.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 64,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        workers: int | None = None,
        cache: ResultCache | str | None = None,
        max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES,
        default_timeout_s: float | None = None,
        trace_out: str | None = None,
        shard_id: str | None = None,
        backend: str | None = None,
        pipeline_depth: int = 32,
        max_sessions: int = 64,
        session_idle_s: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        #: Concurrent frames dispatched per connection; 1 restores the
        #: pre-pipelining strictly sequential behaviour.
        self.pipeline_depth = max(1, pipeline_depth)
        #: Kernel tier (``scalar``/``numpy``/``native``/``auto``) this
        #: daemon serves with; installed process-wide at :meth:`start`
        #: and restored at shutdown (embedding processes keep theirs).
        self.backend = backend
        self._saved_backend: str | None = None
        self._installed_backend = False
        self.max_payload_bytes = max_payload_bytes
        self.default_timeout_s = default_timeout_s
        self.trace_out = trace_out
        #: Fleet identity (``serve --shard-id``): stamped on every reply
        #: header and on Prometheus samples as a ``shard`` label, so a
        #: cluster's aggregated views stay attributable (docs/CLUSTER.md).
        self.shard_id = shard_id
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.batcher = Batcher(
            max_pending=max_pending,
            batch_window_s=batch_window_s,
            max_batch=max_batch,
            workers=workers,
        )
        self.batcher.sweep_runner = self._run_sweep
        #: Stateful temporal-compression streams (docs/INSITU.md).
        self.sessions = SessionTable(
            max_sessions=max_sessions, idle_s=session_idle_s
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._started = time.perf_counter()
        self._requests_total = 0
        self._request_seq = 0
        self._inflight = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._lat_lock = threading.Lock()
        self._installed_telemetry = False
        # Span-harvest state: how many finished spans have been folded
        # into the stage-time counters, plus child durations whose parent
        # span had not finished at harvest time (needed for self-time).
        self._harvest_mark = 0
        self._harvest_lock = threading.Lock()
        self._orphan_child_s: dict[Any, float] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving; resolves ``self.port`` when it was 0."""
        if get_telemetry().enabled is False:
            # The daemon is its own observability domain: STATS reads the
            # process-wide registry, so serving without telemetry would
            # expose empty counters.  Restored at shutdown — an embedding
            # process (tests, notebooks) must get its NullTelemetry back.
            # Retention is capped unless spans must survive for trace_out.
            set_telemetry(Telemetry(
                "service",
                max_finished=None if self.trace_out else SPAN_RETENTION,
            ))
            self._installed_telemetry = True
        if self.backend is not None:
            from repro import kernels

            self._saved_backend = kernels.current_override()
            kernels.set_backend(self.backend)
            self._installed_backend = True
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.batcher.start()
        logger.info("serving on %s:%d", self.host, self.port)

    async def serve(self, install_signal_handlers: bool = True) -> None:
        """Run until drained (SIGTERM/SIGINT or :meth:`request_drain`)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(sig, self.request_drain)
        await self._draining.wait()
        await self._shutdown()

    def request_drain(self) -> None:
        """Begin graceful drain: refuse new work, finish what's admitted."""
        if not self._draining.is_set():
            logger.info("drain requested: refusing new work")
            self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    async def _shutdown(self) -> None:
        assert self._server is not None
        self._server.close()  # stop accepting new connections
        await self._server.wait_closed()
        await self.batcher.drain()  # admitted work finishes + replies
        # Handlers still parked on a read see EOF once their client hangs
        # up; give in-flight replies a beat, then cancel the stragglers.
        pending = [t for t in self._connections if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=1.0)
        for task in self._connections:
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        logger.info(
            "drained after %d request(s); bye", self._requests_total
        )
        if self.trace_out:
            self._dump_trace()
        if self._installed_telemetry:
            from repro.telemetry import NullTelemetry

            set_telemetry(NullTelemetry())
            self._installed_telemetry = False
        if self._installed_backend:
            from repro import kernels

            kernels.set_backend(self._saved_backend)
            self._installed_backend = False

    # -- connection handling ----------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        tm = get_telemetry()
        conn = _ConnectionState()
        gate = asyncio.Semaphore(self.pipeline_depth)
        loop = asyncio.get_running_loop()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, self.max_payload_bytes
                    )
                except ProtocolError as exc:
                    # Malformed framing: answer if the transport still
                    # works, then hang up — resync is impossible.
                    tm.count("service.protocol_errors")
                    with contextlib.suppress(Exception):
                        async with conn.send_lock:
                            await protocol.write_frame(
                                writer,
                                {"status": "error", "code": "protocol",
                                 "error": str(exc)},
                            )
                    return
                if frame is None:  # clean EOF between frames
                    return
                header, payload = frame
                # Pipelined dispatch: don't await the request — spawn it
                # and read the next frame.  The semaphore bounds how far
                # one connection can run ahead of its replies.
                await gate.acquire()
                task = loop.create_task(
                    self._serve_frame(conn, writer, header, payload, gate)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            logger.debug("peer %s reset", peer)
        finally:
            if tasks:
                # The reader is done (EOF/reset/drain-cancel); in-flight
                # frames can no longer deliver replies anywhere useful.
                for task in list(tasks):
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_frame(
        self,
        conn: "_ConnectionState",
        writer: asyncio.StreamWriter,
        header: dict[str, Any],
        payload: bytes,
        gate: asyncio.Semaphore,
    ) -> None:
        try:
            await self._serve_request(conn, writer, header, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the connection task handles transport teardown
        finally:
            gate.release()

    async def _serve_request(
        self,
        conn: "_ConnectionState",
        writer: asyncio.StreamWriter,
        header: dict[str, Any],
        payload: bytes,
    ) -> None:
        tm = get_telemetry()
        op = str(header.get("op", "")).lower()
        rid = header.get("id")
        t0 = time.perf_counter()
        self._requests_total += 1
        self._request_seq += 1
        seq = self._request_seq
        self._inflight += 1
        tm.set_gauge("service.requests_inflight", float(self._inflight))
        tm.count("service.requests")
        tm.count(f"service.requests.{op or 'unknown'}")
        tm.count("service.bytes_in", len(payload))

        async def reply(h: dict[str, Any], body: bytes = b"") -> None:
            if rid is not None:
                h["id"] = rid
            if self.shard_id is not None:
                h.setdefault(protocol.SHARD_FIELD, self.shard_id)
            tm.count("service.bytes_out", len(body))
            with tm.span("service.reply", op=op, bytes=len(body)):
                async with conn.send_lock:
                    await protocol.write_frame(writer, h, body)
            latency = time.perf_counter() - t0
            with self._lat_lock:
                self._latencies.append(latency)
            tm.observe(
                "service.latency_ms", latency * 1e3, bounds=LATENCY_BOUNDS
            )
            tm.observe(
                f'service.latency_ms{{op="{op or "unknown"}"}}',
                latency * 1e3,
                bounds=LATENCY_BOUNDS,
            )

        # Serve under the client's trace context (if the header carries
        # one): the service.request span then chains under the client's
        # call span, and everything below chains under service.request.
        # Contextvars are task-local, so concurrent connections don't
        # bleed into each other.
        ctx = trace_context.extract(header)
        try:
            with trace_context.use(ctx), \
                    trace_context.use_request_id(str(seq)):
                with tm.span(
                    "service.request",
                    op=op, bytes=len(payload), request_id=seq,
                ):
                    if op == "health":
                        await reply(self._health())
                    elif op == "hello":
                        await reply(self._hello(header))
                    elif op == "cancel":
                        await reply(conn.cancel(header.get("cancel_id")))
                    elif op == "stats":
                        await reply(self._stats())
                    elif op == "metrics":
                        text, ctype = self._metrics()
                        await reply(
                            {"status": "ok", "content_type": ctype},
                            text.encode("utf-8"),
                        )
                    elif op == "list":
                        await reply(
                            {"status": "ok",
                             "compressors": available_compressors()}
                        )
                    elif op in ("compress", "decompress", "sweep"):
                        await self._serve_queued(
                            conn, op, header, payload, reply
                        )
                    elif op in (
                        "session_open", "session_step", "session_close"
                    ):
                        await self._serve_session(op, header, payload, reply)
                    else:
                        await reply(
                            {"status": "error", "code": "bad_op",
                             "error": f"unknown op {op!r}"}
                        )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ProtocolError as exc:
            tm.count("service.protocol_errors")
            await reply(
                {"status": "error", "code": "protocol", "error": str(exc)}
            )
        except ReproError as exc:
            tm.count("service.errors")
            await reply(
                {"status": "error", "code": type(exc).__name__,
                 "error": str(exc)}
            )
        except Exception as exc:  # noqa: BLE001 — a bug must not kill the daemon
            logger.exception("internal error serving %s", op)
            tm.count("service.errors")
            await reply(
                {"status": "error", "code": "internal",
                 "error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            self._inflight -= 1
            tm.set_gauge(
                "service.requests_inflight", float(self._inflight)
            )

    def _hello(self, header: dict[str, Any]) -> dict[str, Any]:
        """Capability negotiation: the intersection of offered and ours."""
        ours = [protocol.CAP_PIPELINE]
        if shm_enabled():
            ours.append(protocol.CAP_SHM)
        want = header.get(protocol.CAPS_FIELD)
        if isinstance(want, list):
            ours = [c for c in ours if c in want]
        return {"status": "ok", "role": "daemon", protocol.CAPS_FIELD: ours}

    async def _serve_queued(
        self,
        conn: "_ConnectionState",
        op: str,
        header: dict[str, Any],
        payload: bytes,
        reply,
    ) -> None:
        """Admit a data-plane request and await its batched result."""
        tm = get_telemetry()
        if self.draining:
            await reply(
                {"status": "busy", "code": "draining",
                 "retry_after_ms": DEFAULT_RETRY_AFTER_MS}
            )
            return
        shm_desc = None
        if protocol.SHM_FIELD in header:
            shm_desc = protocol.parse_shm(header[protocol.SHM_FIELD])
            if shm_desc.nbytes > self.max_payload_bytes:
                raise ProtocolError(
                    f"shm payload of {shm_desc.nbytes} bytes exceeds cap "
                    f"{self.max_payload_bytes}"
                )
            if not shm_enabled():
                await reply(
                    {"status": "error", "code": "shm_unavailable",
                     "error": "REPRO_NO_SHM is set on the server"}
                )
                return
            # Fail fast (and in this process, with a clean error code)
            # when the segment is gone or short; the worker re-attaches.
            try:
                SharedArray.attach(shm_desc).close()
            except (DataError, OSError) as exc:
                tm.count("service.shm_attach_errors")
                await reply(
                    {"status": "error", "code": "shm_attach",
                     "error": f"{type(exc).__name__}: {exc}"}
                )
                return
            tm.count("service.shm_requests")
            tm.count("service.bytes_in", shm_desc.nbytes)
        reply_shm = None
        if protocol.REPLY_SHM_FIELD in header and shm_enabled():
            reply_shm = protocol.parse_reply_shm(
                header[protocol.REPLY_SHM_FIELD]
            )
        timeout_ms = header.get("timeout_ms")
        if timeout_ms is None and self.default_timeout_s is not None:
            timeout_ms = self.default_timeout_s * 1e3
        deadline = (
            time.perf_counter() + float(timeout_ms) / 1e3
            if timeout_ms is not None
            else None
        )
        request = PendingRequest(
            op=op,
            header=header,
            payload=payload,
            future=asyncio.get_running_loop().create_future(),
            deadline=deadline,
            # Inside the service.request span the contextvar points at
            # that span's identity — queue/dispatch spans parent there.
            ctx=trace_context.current(),
            request_seq=self._request_seq,
            shm=shm_desc,
        )
        if not self.batcher.admit(request):
            await reply(
                {"status": "busy", "code": "busy",
                 "retry_after_ms": DEFAULT_RETRY_AFTER_MS}
            )
            return
        rid = header.get("id")
        if rid is not None:
            conn.inflight[rid] = request.future
        try:
            result = await request.future
        except TimeoutError as exc:
            await reply(
                {"status": "error", "code": "deadline", "error": str(exc)}
            )
            return
        except asyncio.CancelledError:
            if request.future.cancelled():
                # A CANCEL frame won the race: acknowledge, stay alive.
                await reply(
                    {"status": "error", "code": "cancelled",
                     "error": "request cancelled by peer"}
                )
                return
            request.future.cancel()  # connection teardown: drop the work
            raise
        finally:
            if rid is not None and conn.inflight.get(rid) is request.future:
                del conn.inflight[rid]
        if op == "compress":
            buf: CompressedBuffer = result
            await self._bulk_reply(
                reply,
                {
                    "status": "ok",
                    "compressor": header.get("compressor"),
                    "mode": buf.mode.value,
                    "parameter": buf.parameter,
                    "dtype": np.dtype(buf.original_dtype).str,
                    "shape": list(buf.original_shape),
                    "compression_ratio": buf.compression_ratio,
                    "bitrate": buf.bitrate,
                    "meta": jsonable(buf.meta),
                },
                np.frombuffer(buf.payload, dtype=np.uint8),
                reply_shm,
                raw=buf.payload,
            )
        elif op == "decompress":
            arr: np.ndarray = result
            await self._bulk_reply(
                reply,
                {"status": "ok", **protocol.array_fields(arr)},
                np.ascontiguousarray(arr),
                reply_shm,
            )
        else:  # sweep
            await reply({"status": "ok", "records": result})

    # -- SESSION bodies (stateful temporal streams, docs/INSITU.md) --------

    async def _serve_session(
        self,
        op: str,
        header: dict[str, Any],
        payload: bytes,
        reply,
    ) -> None:
        """Serve SESSION_OPEN / SESSION_STEP / SESSION_CLOSE.

        Session steps bypass the batcher: delta coding is
        order-dependent, so steps of one session serialize on the
        session's lock (different sessions still proceed concurrently on
        the executor).  The codec's encoder reference lives here,
        daemon-side; the reply echoes the post-step reference digest so
        a desynced client fails fast instead of decoding garbage.
        """
        tm = get_telemetry()
        if self.draining:
            await reply(
                {"status": "busy", "code": "draining",
                 "retry_after_ms": DEFAULT_RETRY_AFTER_MS}
            )
            return
        if op == "session_open":
            await reply(self._session_open(header))
            return
        sid = header.get(protocol.SESSION_FIELD)
        if not sid:
            raise ProtocolError(f"{op.upper()} needs a 'session' field")
        sid = str(sid)
        if op == "session_close":
            session = self.sessions.close(sid)
            if session is None:
                await reply(
                    {"status": "error", "code": "no_session",
                     "error": f"no open session {sid!r}"}
                )
                return
            tm.count("service.session_closes")
            await reply(
                {"status": "ok", protocol.SESSION_FIELD: sid,
                 "steps": session.steps,
                 "bytes_in": session.bytes_in,
                 "bytes_out": session.bytes_out}
            )
            return
        await self._session_step(sid, header, payload, reply)

    def _session_open(self, header: dict[str, Any]) -> dict[str, Any]:
        compressor = str(header.get("compressor", "sz"))
        options = header.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")
        mode = str(header.get("mode", "abs"))
        knob = KNOB_FOR_MODE.get(mode)
        if knob is None:
            raise ProtocolError(
                f"unknown mode {mode!r}; known: {sorted(KNOB_FOR_MODE)}"
            )
        if header.get("value") is None:
            raise ProtocolError("SESSION_OPEN needs a 'value' (knob value)")
        value = float(header["value"])
        keyframe_every = int(header.get("keyframe_every", 8))
        codec = TemporalCompressor(
            inner=compressor,
            keyframe_every=keyframe_every,
            inner_options=options,
        )
        codec.check_mode(CompressorMode(mode))
        sid = str(header.get(protocol.SESSION_FIELD) or new_session_id())
        self.sessions.open(Session(
            session_id=sid,
            codec=codec,
            compressor=compressor,
            options=dict(options),
            mode=mode,
            value=value,
            keyframe_every=keyframe_every,
        ))
        get_telemetry().count("service.session_opens")
        return {
            "status": "ok",
            protocol.SESSION_FIELD: sid,
            "compressor": compressor,
            "mode": mode,
            "value": value,
            "keyframe_every": keyframe_every,
        }

    async def _session_step(
        self,
        sid: str,
        header: dict[str, Any],
        payload: bytes,
        reply,
    ) -> None:
        tm = get_telemetry()
        session = self.sessions.get(sid)
        if session is None:
            await reply(
                {"status": "error", "code": "no_session",
                 "error": f"no open session {sid!r} "
                          "(never opened, closed, evicted, or opened on "
                          "a different shard)"}
            )
            return
        shm_desc = None
        if protocol.SHM_FIELD in header:
            shm_desc = protocol.parse_shm(header[protocol.SHM_FIELD])
            if shm_desc.nbytes > self.max_payload_bytes:
                raise ProtocolError(
                    f"shm payload of {shm_desc.nbytes} bytes exceeds cap "
                    f"{self.max_payload_bytes}"
                )
            if not shm_enabled():
                await reply(
                    {"status": "error", "code": "shm_unavailable",
                     "error": "REPRO_NO_SHM is set on the server"}
                )
                return
            try:
                SharedArray.attach(shm_desc).close()
            except (DataError, OSError) as exc:
                tm.count("service.shm_attach_errors")
                await reply(
                    {"status": "error", "code": "shm_attach",
                     "error": f"{type(exc).__name__}: {exc}"}
                )
                return
            tm.count("service.shm_requests")
            tm.count("service.bytes_in", shm_desc.nbytes)
        reply_shm = None
        if protocol.REPLY_SHM_FIELD in header and shm_enabled():
            reply_shm = protocol.parse_reply_shm(
                header[protocol.REPLY_SHM_FIELD]
            )
        codec = session.codec
        async with session.lock:
            # Fail fast on desync: the client tracks the reference digest
            # it expects the daemon to hold; a mismatch means a lost or
            # reordered step and the delta stream would decode garbage.
            if "expect_ref" in header:
                want = header["expect_ref"]
                have = codec.encode_reference_digest
                if want != have:
                    tm.count("service.session_desyncs")
                    await reply(
                        {"status": "error", "code": "session_desync",
                         "error": f"session {sid!r} holds reference "
                                  f"{have or 'nothing'}, client expected "
                                  f"{want or 'nothing'}"}
                    )
                    return
            loop = asyncio.get_running_loop()
            buf, cache_state, nbytes_in = await loop.run_in_executor(
                None, self._session_compress, session, header,
                payload, shm_desc,
            )
        session.steps += 1
        session.bytes_in += nbytes_in
        session.bytes_out += len(buf.payload)
        tm.count("service.session_steps")
        tm.count("service.session_bytes_in", nbytes_in)
        tm.count("service.session_bytes_out", len(buf.payload))
        await self._bulk_reply(
            reply,
            {
                "status": "ok",
                protocol.SESSION_FIELD: sid,
                "step": buf.meta["step"],
                "keyframe": buf.meta["keyframe"],
                "ref": buf.meta["ref_after"],
                "cache": cache_state,
                "mode": buf.mode.value,
                "parameter": buf.parameter,
                "dtype": np.dtype(buf.original_dtype).str,
                "shape": list(buf.original_shape),
                "compression_ratio": buf.compression_ratio,
                "bitrate": buf.bitrate,
                "meta": jsonable(buf.meta),
            },
            np.frombuffer(buf.payload, dtype=np.uint8),
            reply_shm,
            raw=buf.payload,
        )

    def _session_compress(
        self,
        session: Session,
        header: dict[str, Any],
        payload: bytes,
        shm_desc,
    ) -> tuple[CompressedBuffer, str, int]:
        """One session step on the executor thread (session lock held)."""
        from repro.parallel.shm import attached_view

        if shm_desc is not None:
            with attached_view(shm_desc) as arr:
                return self._session_encode(session, arr)
        return self._session_encode(
            session, protocol.unpack_array(header, payload)
        )

    def _session_encode(
        self, session: Session, arr: np.ndarray
    ) -> tuple[CompressedBuffer, str, int]:
        codec = session.codec
        knob = KNOB_FOR_MODE[session.mode]
        nbytes_in = int(arr.nbytes)
        if self.cache is None:
            buf = codec.compress(
                arr, mode=session.mode, **{knob: session.value}
            )
            return buf, "off", nbytes_in
        # Stateful cache identity: the emitted bytes depend on the
        # codec's position in the stream (step index, reference snapshot,
        # keyframe cadence), so all three fold into the key — two
        # sessions at the same (codec, bound, data) stay distinct.
        key = make_key(
            f"temporal:{session.compressor}",
            session.options,
            session.mode,
            knob,
            session.value,
            data_digest(arr),
            reference=(
                f"{codec.step}:{codec.encode_reference_digest or '-'}"
                f":{session.keyframe_every}"
            ),
        )
        entry = self.cache.get(key)
        if entry is not None:
            buf = CompressedBuffer(
                payload=entry["payload"],
                original_shape=tuple(entry["shape"]),
                original_dtype=np.dtype(entry["dtype"]),
                mode=CompressorMode(entry["mode"]),
                parameter=entry["parameter"],
                meta=dict(entry["meta"]),
            )
            # The cached bytes are exactly what compress() would emit;
            # the encoder reference must still advance through them.
            codec.advance_with(buf)
            return buf, "hit", nbytes_in
        buf = codec.compress(arr, mode=session.mode, **{knob: session.value})
        self.cache.put(key, {
            "payload": buf.payload,
            "shape": list(buf.original_shape),
            "dtype": np.dtype(buf.original_dtype).str,
            "mode": buf.mode.value,
            "parameter": buf.parameter,
            "meta": dict(buf.meta),
        })
        return buf, "miss", nbytes_in

    async def _bulk_reply(
        self,
        reply,
        h: dict[str, Any],
        body: np.ndarray,
        reply_shm: tuple[str, int] | None,
        raw: bytes | None = None,
    ) -> None:
        """Send a bulk reply — through the offered scratch segment if the
        result fits, inline otherwise (the client handles both)."""
        tm = get_telemetry()
        if (
            reply_shm is not None
            and SHM_MIN_BYTES <= body.nbytes <= reply_shm[1]
        ):
            name, _ = reply_shm
            try:
                from repro.parallel.shm import ShmDescriptor

                handle = SharedArray.attach(ShmDescriptor(
                    name=name, shape=(body.nbytes,), dtype="|u1"
                ))
            except (DataError, OSError):
                tm.count("service.reply_shm_errors")
            else:
                try:
                    view = handle.view(body.shape, body.dtype)
                    view.flags.writeable = True
                    view[...] = body
                finally:
                    handle.close()
                tm.count("service.shm_replies")
                h[protocol.SHM_NBYTES_FIELD] = body.nbytes
                await reply(h)
                return
        await reply(h, raw if raw is not None else body.tobytes())

    # -- control-plane bodies ---------------------------------------------

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "draining": self.draining,
            "uptime_s": time.perf_counter() - self._started,
            "queue_depth": self.batcher.depth,
            "requests_total": self._requests_total,
        }

    def _stats(self) -> dict[str, Any]:
        tm = get_telemetry()
        self._harvest_spans()
        with self._lat_lock:
            window = list(self._latencies)
        # window_n is the sample count behind the percentiles ("window"
        # kept as a deprecated alias for pre-existing consumers).
        latency = {"window": len(window), "window_n": len(window)}
        if window:
            latency.update(
                p50_ms=_percentile(window, 50) * 1e3,
                p99_ms=_percentile(window, 99) * 1e3,
                mean_ms=sum(window) / len(window) * 1e3,
            )
        from repro import kernels

        out: dict[str, Any] = {
            "status": "ok",
            "uptime_s": time.perf_counter() - self._started,
            "queue_depth": self.batcher.depth,
            "requests_total": self._requests_total,
            "requests_inflight": max(0, self._inflight - 1),  # excl. STATS
            "latency": latency,
            "kernels": {
                "requested": kernels.requested_backend(),
                "active": kernels.active(),
                "tripped": {
                    f"{backend}:{kernel}": reason
                    for (backend, kernel), reason in kernels.REGISTRY.tripped().items()
                },
            },
            "metrics": (
                tm.metrics.snapshot() if tm.enabled else {}
            ),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats.to_dict()
        self.sessions.evict_idle()
        out["sessions"] = self.sessions.to_dict()
        return out

    def _metrics(self) -> tuple[str, str]:
        """The registry rendered for Prometheus (text, content-type)."""
        from repro import kernels
        from repro.telemetry.exposition import PROM_CONTENT_TYPE, render_prometheus

        tm = get_telemetry()
        self._harvest_spans()
        if tm.enabled:
            # Resolved tier per codec stage, for the fleet view / top.
            kernels.publish_gauges(tm)
        extra_gauges = {
            "service_uptime_seconds": time.perf_counter() - self._started,
            "service_queue_depth_now": float(self.batcher.depth),
        }
        extra_labels = (
            {"shard": self.shard_id} if self.shard_id is not None else None
        )
        text = render_prometheus(
            tm.metrics if tm.enabled else None,
            extra_gauges=extra_gauges,
            extra_labels=extra_labels,
        )
        return text, PROM_CONTENT_TYPE

    def _harvest_spans(self) -> None:
        """Fold spans finished since the last harvest into the registry.

        Each span contributes to three labelled counters —
        ``spans.count{name=...}``, ``spans.seconds{name=...}``, and
        ``spans.self_seconds{name=...}`` (duration minus direct
        children) — so stage-level hot-spot data survives the tracer's
        retention cap and reaches STATS/METRICS consumers (the live
        dashboard's "top stages" panel reads these).
        """
        tm = get_telemetry()
        if not tm.enabled:
            return
        tracer = tm.tracer
        with self._harvest_lock:
            retained = tracer.finished_spans()
            total = tracer.finished_total()
            dropped = total - len(retained)
            new = retained[max(0, self._harvest_mark - dropped):]
            self._harvest_mark = total
            if not new:
                return
            # Children finish (and are appended) before their parents, so
            # a parent's direct-child time is normally available in the
            # same batch; still-open parents pick theirs up from the
            # orphan carry-over on a later harvest.
            child_s = self._orphan_child_s
            for sp in new:
                d = sp.duration
                if sp.parent_id is not None:
                    child_s[sp.parent_id] = child_s.get(sp.parent_id, 0.0) + d
                elif sp.ctx_parent_id is not None:
                    child_s[sp.ctx_parent_id] = (
                        child_s.get(sp.ctx_parent_id, 0.0) + d
                    )
            for sp in new:
                own = child_s.pop(sp.span_id, 0.0)
                if sp.ctx_id is not None:
                    own += child_s.pop(sp.ctx_id, 0.0)
                self_s = max(0.0, sp.duration - own)
                tm.count(f'spans.count{{name="{sp.name}"}}')
                tm.count(f'spans.seconds{{name="{sp.name}"}}', sp.duration)
                tm.count(f'spans.self_seconds{{name="{sp.name}"}}', self_s)
            if len(child_s) > SPAN_RETENTION:
                child_s.clear()  # parents were dropped; stop the leak

    def _dump_trace(self) -> None:
        """Write every retained span as JSONL (the ``--trace-out`` dump)."""
        from repro.telemetry import export

        tm = get_telemetry()
        if not tm.enabled:
            return
        spans = tm.tracer.finished_spans()
        try:
            export.write_jsonl(self.trace_out, spans)
            logger.info(
                "wrote %d span(s) to %s", len(spans), self.trace_out
            )
        except OSError as exc:  # pragma: no cover - disk full etc.
            logger.error("could not write %s: %s", self.trace_out, exc)

    # -- SWEEP body (runs on the executor thread via the batcher) ----------

    def _run_sweep(self, request: PendingRequest) -> list[dict[str, Any]]:
        from repro.parallel.shm import attached_view

        if request.shm is not None:
            # The field arrived as a client segment: sweep a zero-copy
            # view of it (the attachment lives for the sweep's duration).
            with attached_view(request.shm) as arr:
                return self._sweep_records(request, arr)
        return self._sweep_records(
            request, protocol.unpack_array(request.header, request.payload)
        )

    def _sweep_records(
        self, request: PendingRequest, arr: np.ndarray
    ) -> list[dict[str, Any]]:
        from repro.foresight.cbench import CBench
        from repro.foresight.config import CompressorSweep

        header = request.header
        field_name = str(header.get("field", "field"))
        entries = header.get("sweeps")
        if not isinstance(entries, list) or not entries:
            raise ServiceError("SWEEP needs a non-empty 'sweeps' list")
        sweeps = [
            CompressorSweep(
                name=e["name"],
                mode=e.get("mode", "abs"),
                sweep=e.get("sweep", {}),
                options=e.get("options", {}),
            )
            for e in entries
        ]
        bench = CBench(
            {field_name: arr},
            keep_reconstructions=False,
            cache=self.cache,
        )
        records = bench.run_all(
            sweeps, [field_name], workers=self.batcher.workers
        )
        rows = []
        for rec in records:
            row = rec.to_row()
            row["cache"] = rec.meta.get("cache", "miss")
            rows.append(jsonable(row))
        return rows


class ServiceThread:
    """Run a :class:`CompressionService` on a background thread.

    The embedding entry point (tests, benchmarks, notebooks)::

        with ServiceThread(max_pending=16) as service:
            with ServiceClient(port=service.port) as client:
                ...

    The context exit requests a drain and joins the thread.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.service = CompressionService(**kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self.loop.run_until_complete(
                self.service.serve(install_signal_handlers=False)
            )
        finally:
            self.loop.close()

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServiceThread":
        self.thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise ServiceError("service thread failed to start in 30s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.service.request_drain)
            self.thread.join(timeout)
            if self.thread.is_alive():
                raise ServiceError("service thread did not drain in time")

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
