"""Daemon-side session table for stateful (temporal) compression.

A *session* is the server half of an in-situ stream: one
:class:`~repro.compressors.temporal.TemporalCompressor` whose encoder
reference lives daemon-side, fed one snapshot per ``SESSION_STEP``.
The table is bounded (``max_sessions``) and idle-evicting (``idle_s``)
so abandoned simulations cannot pin reference snapshots forever —
an evicted session surfaces to its client as a clean ``no_session``
error on the next step, never as silently wrong bytes.

Sessions are single-writer streams: steps within one session are
serialized on the session's lock (delta coding is order-dependent),
while steps of *different* sessions proceed concurrently.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.compressors.temporal import TemporalCompressor
from repro.errors import ServiceError
from repro.telemetry import get_telemetry

__all__ = ["Session", "SessionTable"]

#: Default cap on concurrently open sessions per daemon.
DEFAULT_MAX_SESSIONS = 64

#: Default idle eviction horizon (seconds since last step).
DEFAULT_IDLE_S = 300.0


def new_session_id() -> str:
    return uuid.uuid4().hex


@dataclass
class Session:
    """One open temporal-compression stream and its accounting."""

    session_id: str
    codec: TemporalCompressor
    compressor: str
    options: dict[str, Any]
    mode: str
    value: float
    keyframe_every: int
    created: float = field(default_factory=time.monotonic)
    last_used: float = field(default_factory=time.monotonic)
    steps: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.session_id,
            "compressor": self.compressor,
            "mode": self.mode,
            "value": self.value,
            "keyframe_every": self.keyframe_every,
            "steps": self.steps,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "age_s": time.monotonic() - self.created,
            "idle_s": time.monotonic() - self.last_used,
            "ref": self.codec.encode_reference_digest,
        }


class SessionTable:
    """Bounded, idle-evicting map of open sessions (see module doc)."""

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_s: float = DEFAULT_IDLE_S,
    ) -> None:
        self.max_sessions = int(max_sessions)
        self.idle_s = float(idle_s)
        self._sessions: dict[str, Session] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def _publish(self) -> None:
        get_telemetry().set_gauge(
            "service.sessions_open", float(len(self._sessions))
        )

    def open(self, session: Session) -> None:
        """Admit a new session (evicting idle ones first if at capacity)."""
        if session.session_id in self._sessions:
            raise ServiceError(
                f"session {session.session_id!r} is already open"
            )
        if len(self._sessions) >= self.max_sessions:
            self.evict_idle()
        if len(self._sessions) >= self.max_sessions:
            raise ServiceError(
                f"session table is full ({self.max_sessions} open); "
                "close a session or raise --max-sessions"
            )
        self._sessions[session.session_id] = session
        self._publish()

    def get(self, session_id: str) -> Session | None:
        """The open session, or ``None`` (unknown, closed, or evicted)."""
        self.evict_idle()
        session = self._sessions.get(session_id)
        if session is not None:
            session.touch()
        return session

    def close(self, session_id: str) -> Session | None:
        """Remove and return the session (``None`` if not open)."""
        session = self._sessions.pop(session_id, None)
        self._publish()
        return session

    def evict_idle(self) -> int:
        """Drop sessions idle past the horizon; returns how many."""
        now = time.monotonic()
        stale = [
            sid
            for sid, s in self._sessions.items()
            if now - s.last_used > self.idle_s
        ]
        for sid in stale:
            del self._sessions[sid]
        if stale:
            self.evictions += len(stale)
            get_telemetry().count("service.session_evictions", len(stale))
            self._publish()
        return len(stale)

    def to_dict(self) -> dict[str, Any]:
        """STATS body: open-session summaries plus lifetime eviction count."""
        return {
            "open": len(self._sessions),
            "max": self.max_sessions,
            "idle_s": self.idle_s,
            "evictions": self.evictions,
            "sessions": [s.to_dict() for s in self._sessions.values()],
        }
