"""A minimal hierarchical container standing in for HDF5.

Nyx snapshots are HDF5 files with grouped 3-D datasets.  This container
keeps the structural contract — slash-separated group paths, named N-D
datasets with dtypes and shapes, attributes per node — in a single file:
a JSON table of contents followed by raw array bytes.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from typing import Iterator

import numpy as np

from repro.errors import CorruptStreamError, DataError
from repro.io.mmapview import MappedFile

_MAGIC = b"H5L1"


class H5LikeFile:
    """Hierarchical dataset container.

    >>> f = H5LikeFile()
    >>> f.create_dataset("native_fields/baryon_density", np.zeros((4, 4, 4)))
    >>> f.attrs["format"] = "nyx"
    >>> f.save("/tmp/x.h5l")          # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._datasets: dict[str, np.ndarray] = {}
        self.attrs: dict[str, object] = {}

    def create_dataset(self, path: str, data: np.ndarray) -> None:
        path = path.strip("/")
        if not path:
            raise DataError("dataset path must be non-empty")
        if path in self._datasets:
            raise DataError(f"dataset {path!r} already exists")
        self._datasets[path] = np.ascontiguousarray(data)

    def __getitem__(self, path: str) -> np.ndarray:
        path = path.strip("/")
        if path not in self._datasets:
            raise KeyError(path)
        return self._datasets[path]

    def __contains__(self, path: str) -> bool:
        return path.strip("/") in self._datasets

    def keys(self) -> list[str]:
        return sorted(self._datasets)

    def groups(self) -> list[str]:
        """All intermediate group paths implied by the dataset names."""
        out: set[str] = set()
        for path in self._datasets:
            parts = path.split("/")
            for i in range(1, len(parts)):
                out.add("/".join(parts[:i]))
        return sorted(out)

    def save(self, path: str | Path) -> None:
        toc = {"attrs": self.attrs, "datasets": []}
        blobs = []
        offset = 0
        for name, arr in sorted(self._datasets.items()):
            blob = arr.tobytes()
            toc["datasets"].append(
                {
                    "name": name,
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "offset": offset,
                }
            )
            blobs.append(blob)
            offset += len(blob)
        header = json.dumps(toc).encode()
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(struct.pack("<Q", len(header)))
            fh.write(header)
            for blob in blobs:
                fh.write(blob)

    @classmethod
    def load(cls, path: str | Path) -> "H5LikeFile":
        with open(path, "rb") as fh:
            if fh.read(4) != _MAGIC:
                raise CorruptStreamError("bad H5Like magic")
            (hlen,) = struct.unpack("<Q", fh.read(8))
            toc = json.loads(fh.read(hlen).decode())
            base = fh.tell()
            out = cls()
            out.attrs = dict(toc["attrs"])
            for entry in toc["datasets"]:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(entry["shape"])
                nbytes = int(np.prod(shape)) * dtype.itemsize
                fh.seek(base + entry["offset"])
                blob = fh.read(nbytes)
                if len(blob) != nbytes:
                    raise CorruptStreamError(f"dataset {entry['name']!r} truncated")
                out._datasets[entry["name"]] = np.frombuffer(blob, dtype=dtype).reshape(
                    shape
                ).copy()
        return out


class H5LikeReader:
    """mmap-backed reader over a saved :class:`H5LikeFile`.

    Maps the container read-only and serves zero-copy dataset views, so
    a Nyx-scale 3-D field can be streamed chunk by chunk (flat order)
    without ever materializing it.  The format stores no CRCs, so there
    is nothing to verify; shape/dtype come from the TOC.
    """

    def __init__(self, path: str | Path) -> None:
        self._mapped = MappedFile(path, _MAGIC)
        self.path = self._mapped.path
        self.attrs: dict[str, object] = dict(self._mapped.toc["attrs"])
        self._entries = {e["name"]: e for e in self._mapped.toc["datasets"]}

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, path: str) -> bool:
        return path.strip("/") in self._entries

    def _entry(self, path: str) -> dict:
        path = path.strip("/")
        if path not in self._entries:
            raise KeyError(path)
        return self._entries[path]

    def shape(self, path: str) -> tuple[int, ...]:
        return tuple(self._entry(path)["shape"])

    def dtype(self, path: str) -> np.dtype:
        return np.dtype(self._entry(path)["dtype"])

    def __getitem__(self, path: str) -> np.ndarray:
        """Zero-copy read-only N-D view of one dataset."""
        entry = self._entry(path)
        shape = tuple(entry["shape"])
        count = int(np.prod(shape, dtype=np.int64))
        flat = self._mapped.array_view(entry["offset"], count, entry["dtype"])
        return flat.reshape(shape)

    def iter_chunks(
        self, path: str, chunk_elements: int, drop_pages: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield 1-D chunk views of a dataset's flat (C-order) data."""
        entry = self._entry(path)
        count = int(np.prod(entry["shape"], dtype=np.int64))
        return self._mapped.iter_array_chunks(
            entry["offset"], count, entry["dtype"], chunk_elements,
            drop_pages=drop_pages,
        )

    def close(self) -> None:
        self._mapped.close()

    def __enter__(self) -> "H5LikeReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
