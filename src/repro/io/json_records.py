"""Append-only JSON-lines record store for benchmark results.

CBench and the experiment harness persist one JSON object per evaluated
configuration; downstream analysis and the Cinema writer consume them as
a list of flat dicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.errors import DataError


class RecordStore:
    """JSON-lines file of flat result records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, Any]) -> None:
        if not isinstance(record, dict):
            raise DataError("records must be dicts")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, default=_json_default) + "\n")

    def extend(self, records: Iterable[dict[str, Any]]) -> None:
        for r in records:
            self.append(r)

    def load(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        out = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out


def _json_default(obj: Any) -> Any:
    """Serialize numpy scalars/arrays transparently."""
    import numpy as np

    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)!r}")
