"""A GenericIO-like blocked binary format.

GenericIO (the HACC I/O library) writes self-describing files: a header
listing named variables with dtypes and sizes, followed by per-variable
data blocks protected by CRCs.  This module reproduces that contract:

* header: magic, JSON table of contents (name, dtype, count, offset, crc);
* body: raw little-endian array bytes per variable;
* every read verifies the CRC (zlib.crc32) and raises
  :class:`CorruptStreamError` on mismatch.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from typing import Iterator

import numpy as np

from repro.errors import CorruptStreamError, DataError
from repro.io.mmapview import MappedFile

_MAGIC = b"GIO1"


@dataclass
class GenericIOFile:
    """In-memory view of a GenericIO-like file: name -> 1-D array."""

    variables: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for name, arr in self.variables.items():
            if arr.ndim != 1:
                raise DataError(f"GenericIO variable {name!r} must be 1-D")


def write_genericio(path: str | Path, variables: dict[str, np.ndarray]) -> None:
    """Write ``variables`` (1-D arrays) to ``path``."""
    gio = GenericIOFile(variables=variables)
    toc = []
    blobs = []
    offset = 0
    for name, arr in gio.variables.items():
        data = np.ascontiguousarray(arr).tobytes()
        toc.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "count": int(arr.size),
                "offset": offset,
                "crc": zlib.crc32(data),
            }
        )
        blobs.append(data)
        offset += len(data)
    header = json.dumps(toc).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<Q", len(header)))
        fh.write(header)
        for blob in blobs:
            fh.write(blob)


class GenericIOReader:
    """mmap-backed GenericIO reader for out-of-core traversal.

    Unlike :func:`read_genericio` (which copies every requested variable
    into fresh arrays), this reader maps the file read-only and yields
    zero-copy views, so a field is never materialized wholesale:

    >>> with GenericIOReader("snapshot.gio") as rd:          # doctest: +SKIP
    ...     for chunk in rd.iter_chunks("x", 1 << 20):
    ...         accumulate(chunk)

    CRCs are verified *streamingly* (fixed-stride crc32 over the mapped
    blob, no full-blob copy) the first time each variable is touched;
    pass ``verify=False`` to skip.  ``drop_pages=True`` on
    :meth:`iter_chunks` additionally releases consumed pages so resident
    memory stays near one chunk.
    """

    _CRC_STRIDE = 4 << 20  # bytes per crc32 update

    def __init__(self, path: str | Path, verify: bool = True) -> None:
        self._mapped = MappedFile(path, _MAGIC)
        self.path = self._mapped.path
        self._verify = verify
        self._verified: set[str] = set()
        self._entries = {e["name"]: e for e in self._mapped.toc}

    def variables(self) -> list[str]:
        return list(self._entries)

    def _entry(self, name: str) -> dict:
        if name not in self._entries:
            raise DataError(f"variables not in file: [{name!r}]")
        return self._entries[name]

    def count(self, name: str) -> int:
        return int(self._entry(name)["count"])

    def dtype(self, name: str) -> np.dtype:
        return np.dtype(self._entry(name)["dtype"])

    def verify_crc(self, name: str) -> None:
        """Streaming CRC check of one variable (bounded memory)."""
        entry = self._entry(name)
        nbytes = self.count(name) * self.dtype(name).itemsize
        blob = self._mapped.blob_view(entry["offset"], nbytes)
        crc = 0
        for lo in range(0, nbytes, self._CRC_STRIDE):
            crc = zlib.crc32(blob[lo : lo + self._CRC_STRIDE], crc)
        if crc != entry["crc"]:
            raise CorruptStreamError(f"CRC mismatch in variable {name!r}")
        self._verified.add(name)

    def _check(self, name: str) -> None:
        if self._verify and name not in self._verified:
            self.verify_crc(name)

    def view(self, name: str) -> np.ndarray:
        """Zero-copy read-only 1-D view of one variable."""
        self._check(name)
        entry = self._entry(name)
        return self._mapped.array_view(
            entry["offset"], self.count(name), self.dtype(name)
        )

    def iter_chunks(
        self, name: str, chunk_elements: int, drop_pages: bool = False
    ) -> "Iterator[np.ndarray]":
        """Yield successive read-only chunk views of one variable."""
        self._check(name)
        entry = self._entry(name)
        return self._mapped.iter_array_chunks(
            entry["offset"],
            self.count(name),
            self.dtype(name),
            chunk_elements,
            drop_pages=drop_pages,
        )

    def close(self) -> None:
        self._mapped.close()

    def __enter__(self) -> "GenericIOReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_genericio(
    path: str | Path, variables: list[str] | None = None
) -> GenericIOFile:
    """Read (a subset of) the variables in a GenericIO-like file."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad GenericIO magic {magic!r}")
        (hlen,) = struct.unpack("<Q", fh.read(8))
        toc = json.loads(fh.read(hlen).decode())
        base = fh.tell()
        out: dict[str, np.ndarray] = {}
        for entry in toc:
            if variables is not None and entry["name"] not in variables:
                continue
            dtype = np.dtype(entry["dtype"])
            nbytes = entry["count"] * dtype.itemsize
            fh.seek(base + entry["offset"])
            blob = fh.read(nbytes)
            if len(blob) != nbytes:
                raise CorruptStreamError(f"variable {entry['name']!r} truncated")
            if zlib.crc32(blob) != entry["crc"]:
                raise CorruptStreamError(f"CRC mismatch in variable {entry['name']!r}")
            out[entry["name"]] = np.frombuffer(blob, dtype=dtype).copy()
    if variables is not None:
        missing = set(variables) - set(out)
        if missing:
            raise DataError(f"variables not in file: {sorted(missing)}")
    return GenericIOFile(variables=out)
