"""A GenericIO-like blocked binary format.

GenericIO (the HACC I/O library) writes self-describing files: a header
listing named variables with dtypes and sizes, followed by per-variable
data blocks protected by CRCs.  This module reproduces that contract:

* header: magic, JSON table of contents (name, dtype, count, offset, crc);
* body: raw little-endian array bytes per variable;
* every read verifies the CRC (zlib.crc32) and raises
  :class:`CorruptStreamError` on mismatch.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CorruptStreamError, DataError

_MAGIC = b"GIO1"


@dataclass
class GenericIOFile:
    """In-memory view of a GenericIO-like file: name -> 1-D array."""

    variables: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        for name, arr in self.variables.items():
            if arr.ndim != 1:
                raise DataError(f"GenericIO variable {name!r} must be 1-D")


def write_genericio(path: str | Path, variables: dict[str, np.ndarray]) -> None:
    """Write ``variables`` (1-D arrays) to ``path``."""
    gio = GenericIOFile(variables=variables)
    toc = []
    blobs = []
    offset = 0
    for name, arr in gio.variables.items():
        data = np.ascontiguousarray(arr).tobytes()
        toc.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "count": int(arr.size),
                "offset": offset,
                "crc": zlib.crc32(data),
            }
        )
        blobs.append(data)
        offset += len(data)
    header = json.dumps(toc).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<Q", len(header)))
        fh.write(header)
        for blob in blobs:
            fh.write(blob)


def read_genericio(
    path: str | Path, variables: list[str] | None = None
) -> GenericIOFile:
    """Read (a subset of) the variables in a GenericIO-like file."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad GenericIO magic {magic!r}")
        (hlen,) = struct.unpack("<Q", fh.read(8))
        toc = json.loads(fh.read(hlen).decode())
        base = fh.tell()
        out: dict[str, np.ndarray] = {}
        for entry in toc:
            if variables is not None and entry["name"] not in variables:
                continue
            dtype = np.dtype(entry["dtype"])
            nbytes = entry["count"] * dtype.itemsize
            fh.seek(base + entry["offset"])
            blob = fh.read(nbytes)
            if len(blob) != nbytes:
                raise CorruptStreamError(f"variable {entry['name']!r} truncated")
            if zlib.crc32(blob) != entry["crc"]:
                raise CorruptStreamError(f"CRC mismatch in variable {entry['name']!r}")
            out[entry["name"]] = np.frombuffer(blob, dtype=dtype).copy()
    if variables is not None:
        missing = set(variables) - set(out)
        if missing:
            raise DataError(f"variables not in file: {sorted(missing)}")
    return GenericIOFile(variables=out)
