"""Shared mmap plumbing for the out-of-core file readers.

:class:`MappedFile` maps a TOC-prefixed binary file (the layout shared
by the GenericIO-like and HDF5-like containers: magic, ``<Q`` header
length, JSON table of contents, raw blobs) read-only and hands out
zero-copy numpy views into the body.  Nothing is read eagerly: the page
cache pulls bytes in as views are touched, so a field much larger than
RAM can be traversed chunk by chunk.

``iter_chunks`` can optionally call ``madvise(MADV_DONTNEED)`` on the
pages behind chunks it has already yielded, which keeps the *resident*
set bounded by roughly one chunk even when the traversal touches the
whole field — the mechanism behind the bounded-peak-RSS guarantee in
``benchmarks/bench_streaming.py``.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import CorruptStreamError, DataError

__all__ = ["MappedFile"]


class MappedFile:
    """Read-only mmap over a ``magic + <Q len> + JSON toc + blobs`` file."""

    def __init__(self, path: str | Path, magic: bytes) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._fh.close()
            raise CorruptStreamError(f"{self.path} is empty or unmappable")
        try:
            if self._mm[:4] != magic:
                raise CorruptStreamError(
                    f"bad magic {bytes(self._mm[:4])!r} in {self.path}"
                )
            (hlen,) = struct.unpack("<Q", self._mm[4:12])
            if 12 + hlen > len(self._mm):
                raise CorruptStreamError(f"truncated header in {self.path}")
            self.toc = json.loads(self._mm[12 : 12 + hlen].decode())
            self.base = 12 + hlen
        except Exception:
            self.close()
            raise

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping.

        If zero-copy views are still alive the mapping cannot be torn
        down eagerly (numpy holds exported buffers); the reader still
        transitions to *closed* and the OS mapping is released when the
        last view is garbage-collected.
        """
        if getattr(self, "_mm", None) is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # outstanding views; GC of the last view unmaps
            self._mm = None
        if getattr(self, "_fh", None) is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return getattr(self, "_mm", None) is None

    def __enter__(self) -> "MappedFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering dependent
        try:
            self.close()
        except Exception:
            pass

    # -- views --------------------------------------------------------------

    def blob_view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy bytes of one body blob (offset relative to the body)."""
        if self.closed:
            raise DataError(f"{self.path} reader is closed")
        start = self.base + offset
        if start + nbytes > len(self._mm):
            raise CorruptStreamError(f"blob at offset {offset} truncated")
        return memoryview(self._mm)[start : start + nbytes]

    def array_view(self, offset: int, count: int, dtype: np.dtype) -> np.ndarray:
        """Zero-copy read-only 1-D array over one blob."""
        dtype = np.dtype(dtype)
        arr = np.frombuffer(
            self.blob_view(offset, count * dtype.itemsize), dtype=dtype
        )
        arr.flags.writeable = False
        return arr

    def iter_array_chunks(
        self,
        offset: int,
        count: int,
        dtype: np.dtype,
        chunk_elements: int,
        drop_pages: bool = False,
    ) -> Iterator[np.ndarray]:
        """Yield successive ``chunk_elements``-sized views of a blob.

        With ``drop_pages=True``, pages behind chunks already consumed are
        released via ``madvise(MADV_DONTNEED)`` so the resident set stays
        near one chunk.  Views from earlier iterations remain *valid*
        (the mapping persists) but touching them faults the pages back in.
        """
        if chunk_elements < 1:
            raise DataError("chunk_elements must be >= 1")
        dtype = np.dtype(dtype)
        page = mmap.PAGESIZE
        start_byte = self.base + offset
        for lo in range(0, count, chunk_elements):
            n = min(chunk_elements, count - lo)
            yield self.array_view(offset + lo * dtype.itemsize, n, dtype)
            if drop_pages and hasattr(self._mm, "madvise"):
                done_end = start_byte + (lo + n) * dtype.itemsize
                done_lo = start_byte - (start_byte % page)
                length = (done_end - done_end % page) - done_lo
                if length > 0:
                    try:
                        self._mm.madvise(mmap.MADV_DONTNEED, done_lo, length)
                    except (OSError, ValueError):  # pragma: no cover
                        pass  # advisory only; correctness is unaffected
