"""File-format substrates.

The paper's datasets ship as GenericIO (HACC) and HDF5 (Nyx); these
modules are minimal from-scratch equivalents with the same structural
contracts — named variables with dtypes and per-block CRCs for
GenericIO-like files, and a hierarchical group/dataset tree for the
HDF5-like container — so the examples and Foresight I/O paths exercise
realistic file handling.
"""

from repro.io.genericio import (
    GenericIOFile,
    GenericIOReader,
    read_genericio,
    write_genericio,
)
from repro.io.hdf5like import H5LikeFile, H5LikeReader
from repro.io.json_records import RecordStore
from repro.io.mmapview import MappedFile

__all__ = [
    "GenericIOFile",
    "GenericIOReader",
    "read_genericio",
    "write_genericio",
    "H5LikeFile",
    "H5LikeReader",
    "MappedFile",
    "RecordStore",
]
