"""repro — reproduction of Jin et al., *Understanding GPU-Based Lossy
Compression for Extreme-Scale Cosmological Simulations* (IPDPS 2020).

Subpackages
-----------
``repro.compressors``
    SZ-family (error-bounded, prediction-based) and ZFP-family
    (fixed-rate, transform-based) lossy compressors, implemented from
    scratch on numpy with the GPU formulations (dual quantization,
    per-block embedded coding).
``repro.lossless``
    Canonical Huffman, RLE, LZSS backends.
``repro.cosmo``
    Synthetic HACC/Nyx data generators, FoF halo finder, power spectra.
``repro.metrics``
    PSNR/MSE/MRE/NRMSE, compression ratio/bitrate, 3-D SSIM.
``repro.gpu``
    Analytic GPU performance model (Table I catalog, PCIe, roofline).
``repro.foresight``
    The CBench / PAT / Cinema benchmarking framework.
``repro.analysis``
    Rate-distortion, pk-ratio, halo-ratio sweeps and the Section V-D
    best-fit configuration optimizer.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

from repro.compressors import (
    CompressedBuffer,
    Compressor,
    CompressorMode,
    CuZFP,
    GPUSZ,
    SZCompressor,
    ZFPCompressor,
    available_compressors,
    get_compressor,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CompressedBuffer",
    "Compressor",
    "CompressorMode",
    "SZCompressor",
    "GPUSZ",
    "ZFPCompressor",
    "CuZFP",
    "available_compressors",
    "get_compressor",
    "ReproError",
    "__version__",
]
