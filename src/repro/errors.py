"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration file or parameter set is invalid."""


class CompressionError(ReproError):
    """A compressor failed to compress or decompress a buffer."""


class CorruptStreamError(CompressionError):
    """A compressed stream failed validation (bad magic, truncation, CRC)."""


class UnsupportedModeError(CompressionError):
    """The requested compression mode is not supported by this compressor.

    Mirrors the real-world constraints the paper works around: GPU-SZ only
    supports ABS mode on 3-D data, and cuZFP only supports fixed-rate mode.
    """


class DataError(ReproError):
    """Input data does not satisfy the requirements of an operation."""


class ScheduleError(ReproError):
    """A PAT workflow is malformed (cycles, missing dependencies)."""


class AnalysisError(ReproError):
    """A post-hoc analysis (power spectrum, halo finding) failed."""


class KernelUnavailableError(ReproError):
    """A kernel backend cannot run in this process (missing compiler or
    optional dependency, failed probe).  The registry treats it as a
    signal to fall back one tier, never as a user-facing failure."""


class ProtocolError(ReproError):
    """A service wire frame is malformed (bad magic, oversized, truncated)."""


class ServiceError(ReproError):
    """The compression service returned an error reply or misbehaved."""


class ServiceBusyError(ServiceError):
    """The daemon's admission queue was full and retries were exhausted."""
