"""Run-length coding for integer symbol streams.

Dual-quantized Lorenzo residuals on smooth cosmology fields are dominated
by the "exactly predicted" symbol, producing very long runs; RLE ahead of
Huffman captures them cheaply.  The encoding is a pair of arrays
(values, run lengths) — both vectorized via ``np.diff`` boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def rle_encode(symbols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode ``symbols`` as (values, run_lengths).

    ``np.repeat(values, run_lengths)`` reconstructs the input exactly.
    """
    symbols = np.ascontiguousarray(symbols).ravel()
    if symbols.size == 0:
        return symbols[:0], np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(symbols) != 0)
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [symbols.size]))
    return symbols[starts], (ends - starts).astype(np.int64)


def rle_decode(values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    values = np.asarray(values)
    run_lengths = np.asarray(run_lengths, dtype=np.int64)
    if values.shape != run_lengths.shape:
        raise DataError("values and run_lengths must have identical shapes")
    if run_lengths.size and run_lengths.min() <= 0:
        raise DataError("run lengths must be positive")
    return np.repeat(values, run_lengths)
