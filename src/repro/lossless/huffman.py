"""Canonical, length-limited Huffman coding.

Design notes
------------
* **Length-limited codes.**  Code lengths are computed with the
  package-merge algorithm (Larmore & Hirschberg 1990) under a configurable
  limit (default 16 bits).  A bounded maximum length lets the decoder use a
  single dense ``2^maxlen`` lookup table, which is what makes the
  chunk-parallel decode below a table gather instead of a tree walk.
* **Canonical form.**  Only the code *lengths* are serialized (5 bits per
  alphabet symbol); both sides rebuild identical codewords by assigning
  codes in (length, symbol) order.
* **Vectorized encode.**  Symbols are mapped to (codeword, length) arrays
  with fancy indexing and packed by
  :func:`repro.util.bits.pack_varlen_codes` — no per-symbol Python loop.
* **Chunk-parallel decode.**  The encoder records the bit offset of every
  ``chunk_size``-symbol chunk, exactly like cuSZ's coarse-grained GPU
  Huffman codec records per-chunk metadata so each thread block can decode
  its chunk independently.  The decoder then advances *all* chunk cursors
  in lockstep: each iteration gathers ``maxlen`` bits at every cursor,
  looks up (symbol, length) in the dense table, and bumps the cursors —
  ``chunk_size`` iterations of width-``nchunks`` vector operations.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptStreamError, DataError
from repro.kernels import call as _kcall
from repro.util.bits import (
    _pack_varlen_numpy,
    _pack_varlen_scalar,
    pack_fixed_width,
    unpack_fixed_width,
)

_MAGIC = b"HUF1"

#: Serialized record of the sparse code-length table: ``struct "<IB"``.
_SPARSE_RECORD = np.dtype([("symbol", "<u4"), ("length", "u1")])


def package_merge_lengths(freqs: np.ndarray, max_len: int) -> np.ndarray:
    """Optimal length-limited code lengths for ``freqs`` (package-merge).

    Zero-frequency symbols get length 0 (no codeword).  Raises
    :class:`DataError` if the alphabet cannot be coded within ``max_len``
    bits (needs ``2^max_len >= number of used symbols``).

    Dispatches the ``huffman.package_merge`` kernel: the vectorized
    two-pass formulation (:func:`_package_merge_counts`, ``numpy``) or
    the seed per-item reference loop (``scalar``).  Both produce
    identical lengths (``tests/test_fastpath_equivalence.py``).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    used = np.flatnonzero(freqs > 0)
    n = used.size
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if n == 0:
        return lengths
    if n == 1:
        lengths[used[0]] = 1
        return lengths
    if n > (1 << max_len):
        raise DataError(f"alphabet of {n} symbols cannot fit in {max_len}-bit codes")
    counts = _kcall("huffman.package_merge", freqs[used], max_len)
    lengths[used] = counts.astype(np.uint8)
    return lengths


def _package_merge_counts(leaf_weights: np.ndarray, max_len: int) -> np.ndarray:
    """Vectorized package-merge: per-used-symbol selection counts.

    Forward pass: per denomination level, stable-sort (leaves first, then
    the packages paired from the level below) and pair adjacent items —
    all as array ops.  Backward pass: select the ``2n - 2`` cheapest
    level-1 items, then propagate selection down through package pairs
    with scatter-adds; a leaf's code length is the number of levels at
    which it is selected.  Identical to summing per-item membership
    vectors, without materializing any.
    """
    n = leaf_weights.size
    orders: list[np.ndarray] = []
    prev_w = np.zeros(0, dtype=np.int64)
    for level in range(max_len, 0, -1):
        weights = np.concatenate([leaf_weights, prev_w])
        order = np.argsort(weights, kind="stable")
        orders.append(order)
        if level == 1:
            break
        sorted_w = weights[order]
        npairs = sorted_w.size // 2
        prev_w = sorted_w[0 : 2 * npairs : 2] + sorted_w[1 : 2 * npairs : 2]

    counts = np.zeros(n, dtype=np.int64)
    sel = np.zeros(orders[-1].size, dtype=np.int64)
    sel[: 2 * n - 2] = 1
    for i in range(len(orders) - 1, -1, -1):
        orig = orders[i]
        leaf = orig < n
        np.add.at(counts, orig[leaf], sel[leaf])
        if i == 0:
            break
        pkg = orig[~leaf] - n
        taken = sel[~leaf]
        sel = np.zeros(orders[i - 1].size, dtype=np.int64)
        np.add.at(sel, 2 * pkg, taken)
        np.add.at(sel, 2 * pkg + 1, taken)
    return counts


def _package_merge_counts_scalar(
    leaf_weights: np.ndarray, max_len: int
) -> np.ndarray:
    """Seed reference: explicit per-item membership count vectors."""
    n = leaf_weights.size
    memberships: list[np.ndarray] = []  # id -> count-vector over used symbols

    def make_leaf(i: int) -> tuple[int, int]:
        vec = np.zeros(n, dtype=np.int32)
        vec[i] = 1
        memberships.append(vec)
        return (int(leaf_weights[i]), len(memberships) - 1)

    prev_level: list[tuple[int, int]] = []
    for level in range(max_len, 0, -1):
        items = sorted(
            [make_leaf(i) for i in range(n)] + prev_level, key=lambda t: t[0]
        )
        if level == 1:
            take = items[: 2 * n - 2]
            counts = np.zeros(n, dtype=np.int64)
            for _, mid in take:
                counts += memberships[mid]
            return counts
        # Package pairs for the next level up.
        next_level = []
        for j in range(0, len(items) - 1, 2):
            w = items[j][0] + items[j + 1][0]
            vec = memberships[items[j][1]] + memberships[items[j + 1][1]]
            memberships.append(vec)
            next_level.append((w, len(memberships) - 1))
        prev_level = next_level
    raise AssertionError("unreachable")


def huffman_lengths(freqs: np.ndarray, max_len: int = 16) -> np.ndarray:
    """Code lengths for ``freqs``: classic Huffman, rebuilt with
    package-merge only when the unconstrained tree exceeds ``max_len``.

    The classic O(n log n) heap construction is much faster than
    package-merge for the large alphabets SZ quantization produces, so it
    is tried first.
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    used = np.flatnonzero(freqs > 0)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths
    # Heap items are (weight, tie, node); ties are unique so node ids are
    # never compared and the pop order matches the seed implementation
    # (which carried explicit member lists and charged every merge to all
    # of them — O(n^2)).  Here each merge just records parent pointers and
    # leaf depths fall out of one O(n) top-down pass.
    n = used.size
    heap: list[tuple[int, int, int]] = [
        (int(freqs[s]), int(s), node) for node, s in enumerate(used)
    ]
    heapq.heapify(heap)
    parent = [-1] * (2 * n - 1)
    tie = freqs.size
    next_node = n
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        parent[n1] = parent[n2] = next_node
        heapq.heappush(heap, (w1 + w2, tie, next_node))
        tie += 1
        next_node += 1
    depth = [0] * (2 * n - 1)
    for node in range(2 * n - 3, -1, -1):  # parents precede: ids descend
        depth[node] = depth[parent[node]] + 1
    leaf_depth = np.array(depth[:n], dtype=np.int64)
    if leaf_depth.max() <= max_len:
        lengths[used] = leaf_depth.astype(np.uint8)
        return lengths
    return package_merge_lengths(freqs, max_len)


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given per-symbol lengths.

    Symbols are ordered by (length, symbol index); codes are consecutive
    integers within a length class, shifted when the class length grows.
    Kraft validity is checked and :class:`DataError` raised otherwise.
    """
    lengths = np.asarray(lengths, dtype=np.uint8)
    used = np.flatnonzero(lengths > 0)
    codes = np.zeros(lengths.size, dtype=np.uint64)
    if used.size == 0:
        return codes
    kraft = np.sum(2.0 ** (-lengths[used].astype(np.float64)))
    if kraft > 1.0 + 1e-9:
        raise DataError(f"invalid code lengths (Kraft sum {kraft:.6f} > 1)")
    order = used[np.lexsort((used, lengths[used]))]
    return _kcall("huffman.canonical", lengths, order)


def _canonical_codes_scalar(lengths: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Seed reference: per-symbol canonical-code walk in (length, symbol)
    order."""
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= ln - prev_len
        codes[s] = code
        code += 1
        prev_len = ln
    return codes


def _canonical_codes_numpy(lengths: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Canonical first-code recurrence: the code of the first symbol of
    length l is (first[l-1] + count[l-1]) << 1 (0 for the shortest
    class); within a class codes are consecutive by symbol order.
    Algebraically identical to the seed per-symbol walk."""
    codes = np.zeros(lengths.size, dtype=np.uint64)
    lens = lengths[order].astype(np.int64)
    max_l = int(lens[-1])
    class_counts = np.bincount(lens, minlength=max_l + 1)
    first = np.zeros(max_l + 1, dtype=np.int64)
    code = 0
    for ln in range(1, max_l + 1):
        code = (code + int(class_counts[ln - 1])) << 1
        first[ln] = code
    rank = np.arange(order.size, dtype=np.int64) - np.searchsorted(lens, lens)
    codes[order] = (first[lens] + rank).astype(np.uint64)
    return codes


@dataclass(frozen=True)
class HuffmanEncoded:
    """Self-describing Huffman-compressed buffer (see :class:`HuffmanCodec`)."""

    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)


class HuffmanCodec:
    """Canonical length-limited Huffman codec over dense integer alphabets.

    Symbols must be integers in ``[0, alphabet_size)``.  ``chunk_size``
    controls the granularity of the parallel decode (and the offset-table
    overhead: 8 bytes per chunk).
    """

    def __init__(self, max_len: int = 16, chunk_size: int = 4096) -> None:
        if not 1 <= max_len <= 24:
            raise DataError("max_len must be in [1, 24]")
        if chunk_size < 1:
            raise DataError("chunk_size must be >= 1")
        self.max_len = max_len
        self.chunk_size = chunk_size

    # -- encoding ----------------------------------------------------------

    def encode(self, symbols: np.ndarray, alphabet_size: int | None = None) -> HuffmanEncoded:
        symbols = np.ascontiguousarray(symbols).ravel()
        if symbols.size and symbols.min() < 0:
            raise DataError("symbols must be nonnegative")
        if alphabet_size is None:
            alphabet_size = int(symbols.max()) + 1 if symbols.size else 1
        if symbols.size and int(symbols.max()) >= alphabet_size:
            raise DataError("symbol exceeds declared alphabet size")

        freqs = np.bincount(symbols, minlength=alphabet_size).astype(np.int64)
        lengths = huffman_lengths(freqs, self.max_len)
        codes = canonical_codes(lengths)

        n = symbols.size
        body, total_bits, chunk_bit_offsets = _kcall(
            "huffman.encode", symbols, codes, lengths, self.chunk_size
        )
        nchunks = int(chunk_bit_offsets.size)

        header = struct.pack(
            "<4sIIQQI",
            _MAGIC,
            alphabet_size,
            self.max_len,
            n,
            total_bits,
            self.chunk_size,
        )
        length_table = self._serialize_lengths(lengths, alphabet_size)
        offsets = chunk_bit_offsets.tobytes()
        payload = b"".join(
            [
                header,
                struct.pack("<I", len(length_table)),
                length_table,
                struct.pack("<I", nchunks),
                offsets,
                body,
            ]
        )
        return HuffmanEncoded(payload=payload)

    @staticmethod
    def _serialize_lengths(lengths: np.ndarray, alphabet_size: int) -> bytes:
        """Code-length table: dense 5-bit lengths, or a sparse
        (symbol, length) list when few symbols are used — skewed SZ
        residual streams often use a handful of the 2*radius alphabet."""
        used = np.flatnonzero(lengths > 0)
        dense_bytes = -(-(5 * alphabet_size) // 8)
        sparse_bytes = 4 + 5 * used.size  # u32 count + (u32 symbol, u8 len)
        if sparse_bytes < dense_bytes:
            records = np.empty(used.size, dtype=_SPARSE_RECORD)
            records["symbol"] = used
            records["length"] = lengths[used]
            return b"\x01" + struct.pack("<I", used.size) + records.tobytes()
        return b"\x00" + pack_fixed_width(lengths.astype(np.uint64), 5)

    @staticmethod
    def _deserialize_lengths(blob: bytes, alphabet_size: int) -> np.ndarray:
        if not blob:
            raise CorruptStreamError("empty Huffman length table")
        kind, rest = blob[0], blob[1:]
        lengths = np.zeros(alphabet_size, dtype=np.uint8)
        if kind == 0:
            return unpack_fixed_width(rest, 5, alphabet_size).astype(np.uint8)
        if kind != 1:
            raise CorruptStreamError(f"unknown Huffman table format {kind}")
        (count,) = struct.unpack("<I", rest[:4])
        blob = rest[4 : 4 + 5 * count]
        if len(blob) < 5 * count:
            raise CorruptStreamError("Huffman stream truncated (length table)")
        records = np.frombuffer(blob, dtype=_SPARSE_RECORD)
        symbols = records["symbol"].astype(np.int64)
        if symbols.size and int(symbols.max()) >= alphabet_size:
            raise CorruptStreamError("sparse Huffman table symbol out of range")
        lengths[symbols] = records["length"]
        return lengths

    # -- decoding ----------------------------------------------------------

    def decode(self, encoded: HuffmanEncoded | bytes) -> np.ndarray:
        payload = encoded.payload if isinstance(encoded, HuffmanEncoded) else encoded
        hsize = struct.calcsize("<4sIIQQI")
        if len(payload) < hsize:
            raise CorruptStreamError("Huffman stream truncated (header)")
        magic, alphabet_size, max_len, n, total_bits, chunk_size = struct.unpack(
            "<4sIIQQI", payload[:hsize]
        )
        if magic != _MAGIC:
            raise CorruptStreamError("bad Huffman magic")
        try:
            pos = hsize
            (lt_len,) = struct.unpack("<I", payload[pos : pos + 4])
            pos += 4
            lengths = self._deserialize_lengths(
                payload[pos : pos + lt_len], alphabet_size
            )
            pos += lt_len
            (nchunks,) = struct.unpack("<I", payload[pos : pos + 4])
            pos += 4
            if len(payload) < pos + 8 * nchunks:
                raise CorruptStreamError("Huffman stream truncated (offsets)")
            chunk_offsets = np.frombuffer(
                payload[pos : pos + 8 * nchunks], dtype=np.uint64
            ).astype(np.int64)
            pos += 8 * nchunks
        except struct.error as exc:
            raise CorruptStreamError(f"Huffman stream truncated: {exc}") from exc
        body = payload[pos:]
        if n == 0:
            return np.zeros(0, dtype=np.int64)

        codes = canonical_codes(lengths)
        table_sym, table_len = self._build_decode_table(codes, lengths, max_len)

        if len(body) * 8 < total_bits:
            raise CorruptStreamError("Huffman stream truncated (body)")
        return _kcall(
            "huffman.decode", body, table_sym, table_len, chunk_offsets,
            n, chunk_size, max_len, total_bits,
        )

    @staticmethod
    def _build_decode_table(
        codes: np.ndarray, lengths: np.ndarray, max_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense table: top ``max_len`` bits -> (symbol, code length)."""
        size = 1 << max_len
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.zeros(size, dtype=np.int64)
        used = np.flatnonzero(lengths > 0)
        if used.size == 0:
            return table_sym, table_len
        lens = lengths[used].astype(np.int64)
        if int(lens.max()) > max_len:
            raise CorruptStreamError("code length exceeds declared max_len")
        spans = 1 << (max_len - lens)
        prefixes = codes[used].astype(np.int64) << (max_len - lens)
        owner = np.repeat(np.arange(used.size), spans)
        starts = np.concatenate(([0], np.cumsum(spans)[:-1]))
        pos = prefixes[owner] + np.arange(owner.size, dtype=np.int64) - starts[owner]
        table_sym[pos] = used[owner]
        table_len[pos] = lens[owner]
        return table_sym, table_len


# -- ``huffman.encode`` / ``huffman.decode`` kernel implementations ----------
#
# Registered with the kernel registry (repro.kernels.defs); the native
# tier lives in repro.kernels.native.  Uniform signatures across tiers.


def _chunk_offsets_for(sym_lengths: np.ndarray, n: int, chunk_size: int) -> np.ndarray:
    """Bit offset of every ``chunk_size``-symbol chunk (uint64)."""
    nchunks = max(1, -(-n // chunk_size))
    bit_cumsum = np.concatenate(([0], np.cumsum(sym_lengths)))
    return bit_cumsum[np.arange(nchunks) * chunk_size].astype(np.uint64)


def _encode_chunks_numpy(
    symbols: np.ndarray, codes: np.ndarray, lengths: np.ndarray, chunk_size: int
) -> tuple[bytes, int, np.ndarray]:
    """Fancy-indexed gather + grouped vectorized pack."""
    sym_lengths = lengths[symbols].astype(np.int64)
    offsets = _chunk_offsets_for(sym_lengths, symbols.size, chunk_size)
    if symbols.size == 0:
        return b"", 0, offsets
    body, total_bits = _pack_varlen_numpy(
        np.ascontiguousarray(codes[symbols], dtype=np.uint64), sym_lengths
    )
    return body, total_bits, offsets


def _encode_chunks_scalar(
    symbols: np.ndarray, codes: np.ndarray, lengths: np.ndarray, chunk_size: int
) -> tuple[bytes, int, np.ndarray]:
    """Seed reference: same gather, ragged-expansion pack."""
    sym_lengths = lengths[symbols].astype(np.int64)
    offsets = _chunk_offsets_for(sym_lengths, symbols.size, chunk_size)
    if symbols.size == 0:
        return b"", 0, offsets
    body, total_bits = _pack_varlen_scalar(
        np.ascontiguousarray(codes[symbols], dtype=np.uint64), sym_lengths
    )
    return body, total_bits, offsets


def _decode_chunks_scalar(
    body: bytes,
    table_sym: np.ndarray,
    table_len: np.ndarray,
    chunk_offsets: np.ndarray,
    n: int,
    chunk_size: int,
    max_len: int,
    total_bits: int,
) -> np.ndarray:
    """Seed reference loop: re-derive the active chunk set and check for
    table holes on every step."""
    bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8), bitorder="big")
    # Pad so that gathering max_len bits never runs off the end.
    bits = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])
    nchunks = chunk_offsets.size
    out = np.empty(n, dtype=np.int64)
    cursors = chunk_offsets.copy()
    counts = np.minimum(
        chunk_size, n - np.arange(nchunks, dtype=np.int64) * chunk_size
    )
    weights = (1 << np.arange(max_len - 1, -1, -1)).astype(np.int64)
    window = np.arange(max_len, dtype=np.int64)
    max_iters = int(counts.max())
    for step in range(max_iters):
        active = np.flatnonzero(counts > step)
        idx = cursors[active, None] + window[None, :]
        keys = bits[idx].astype(np.int64) @ weights
        syms = table_sym[keys]
        lens = table_len[keys]
        if np.any(lens == 0):
            raise CorruptStreamError("invalid codeword in Huffman stream")
        out[active * chunk_size + step] = syms
        cursors[active] += lens
    if int(cursors.max(initial=0)) > total_bits:
        raise CorruptStreamError("Huffman decode overran declared bit length")
    return out


def _decode_chunks_numpy(
    body: bytes,
    table_sym: np.ndarray,
    table_len: np.ndarray,
    chunk_offsets: np.ndarray,
    n: int,
    chunk_size: int,
    max_len: int,
    total_bits: int,
) -> np.ndarray:
    """Lockstep chunk-parallel decode with a fused (symbol, length)
    table: one gather per step instead of two.  A *complete* canonical
    code covers every key, so the per-step invalid-codeword check is
    only needed when the table has holes (e.g. a single-symbol
    alphabet)."""
    bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8), bitorder="big")
    bits = np.concatenate([bits, np.zeros(max_len, dtype=np.uint8)])
    nchunks = chunk_offsets.size
    out = np.empty(n, dtype=np.int64)
    cursors = chunk_offsets.copy()
    counts = np.minimum(
        chunk_size, n - np.arange(nchunks, dtype=np.int64) * chunk_size
    )
    weights = (1 << np.arange(max_len - 1, -1, -1)).astype(np.int64)
    window = np.arange(max_len, dtype=np.int64)
    fused = (table_sym.astype(np.int64) << 6) | table_len
    complete = bool(table_len.all())
    base = np.arange(nchunks, dtype=np.int64) * chunk_size
    # The live-chunk set only shrinks when ``step`` passes a chunk's
    # symbol count, so compact the per-chunk state at those (few)
    # steps and keep the hot loop free of active-set bookkeeping.
    shrink_steps = set(np.unique(counts).tolist())
    cur_live = cursors
    base_live = base
    counts_live = counts
    finished_max = 0
    max_iters = int(counts.max()) if nchunks else 0
    for step in range(max_iters):
        if step in shrink_steps:
            keep = counts_live > step
            finished_max = max(
                finished_max, int(cur_live[~keep].max(initial=0))
            )
            cur_live = cur_live[keep]
            base_live = base_live[keep]
            counts_live = counts_live[keep]
        entry = fused[
            bits[cur_live[:, None] + window].astype(np.int64) @ weights
        ]
        lens = entry & 63
        if not complete and not lens.all():
            raise CorruptStreamError("invalid codeword in Huffman stream")
        out[base_live + step] = entry >> 6
        cur_live += lens
    if max(finished_max, int(cur_live.max(initial=0))) > total_bits:
        raise CorruptStreamError("Huffman decode overran declared bit length")
    return out
