"""Composable lossless pipelines.

SZ's lossless stage chains entropy coding with a dictionary coder.  A
:class:`LosslessPipeline` names an ordered list of byte-level stages and
applies/unwinds them; the stream records which pipeline produced it so the
decoder is self-describing.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.errors import ConfigError, CorruptStreamError
from repro.lossless.lzss import lzss_compress, lzss_decompress

_MAGIC = b"PIPE"

_STAGES: dict[str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
    "identity": (lambda b: b, lambda b: b),
    "lzss": (lzss_compress, lzss_decompress),
}


def register_stage(
    name: str,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes], bytes],
) -> None:
    """Register a custom byte-level stage under ``name``."""
    if name in _STAGES:
        raise ConfigError(f"lossless stage {name!r} already registered")
    _STAGES[name] = (compress, decompress)


class LosslessPipeline:
    """Ordered chain of byte-level lossless stages.

    >>> pipe = LosslessPipeline(["lzss"])
    >>> pipe.decompress(pipe.compress(b"abcabcabc" * 10)) == b"abcabcabc" * 10
    True
    """

    def __init__(self, stages: list[str] | None = None) -> None:
        self.stages = list(stages or [])
        for s in self.stages:
            if s not in _STAGES:
                raise ConfigError(f"unknown lossless stage {s!r}")

    def compress(self, data: bytes) -> bytes:
        names = ",".join(self.stages).encode()
        out = data
        for s in self.stages:
            out = _STAGES[s][0](out)
        return _MAGIC + struct.pack("<H", len(names)) + names + out

    def decompress(self, payload: bytes) -> bytes:
        if payload[:4] != _MAGIC:
            raise CorruptStreamError("bad lossless-pipeline magic")
        (nlen,) = struct.unpack("<H", payload[4:6])
        names = payload[6 : 6 + nlen].decode()
        stages = [s for s in names.split(",") if s]
        out = payload[6 + nlen :]
        for s in reversed(stages):
            if s not in _STAGES:
                raise CorruptStreamError(f"stream uses unknown stage {s!r}")
            out = _STAGES[s][1](out)
        return out
