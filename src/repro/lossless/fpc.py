"""FPC: lossless floating-point compression (Burtscher & Ratanaworabhan).

The paper's Section II-A baseline: "Lossless compressors such as FPZIP
and FPC can provide only compression ratios typically lower than 2:1 for
dense scientific data because of the significant randomness of the ending
mantissa bits."  This is a faithful FPC implementation so that claim can
be measured rather than quoted:

* two hash-table value predictors — FCM (finite context method) and
  DFCM (differential FCM) — each predicting the next word from a hash of
  recent history;
* the better predictor's residual (actual XOR prediction) is encoded as
  a 4-bit header (1 selector bit + 3-bit leading-zero-byte count) plus
  the surviving bytes.

FPC is inherently sequential (each prediction depends on the previous
value through the hash state), so this is a Python loop over words —
fine at study scale; the point of the module is the measured ratio, not
throughput.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptStreamError, DataError

_MAGIC = b"FPC1"


class _FPCPredictors:
    """FCM + DFCM hash predictors over unsigned 64-bit words."""

    def __init__(self, table_bits: int = 16) -> None:
        self.mask = (1 << table_bits) - 1
        self.fcm = [0] * (self.mask + 1)
        self.dfcm = [0] * (self.mask + 1)
        self.fcm_hash = 0
        self.dfcm_hash = 0
        self.last = 0

    def predict(self) -> tuple[int, int]:
        fcm_pred = self.fcm[self.fcm_hash]
        dfcm_pred = (self.dfcm[self.dfcm_hash] + self.last) & 0xFFFFFFFFFFFFFFFF
        return fcm_pred, dfcm_pred

    def update(self, value: int) -> None:
        self.fcm[self.fcm_hash] = value
        self.fcm_hash = ((self.fcm_hash << 6) ^ (value >> 48)) & self.mask
        delta = (value - self.last) & 0xFFFFFFFFFFFFFFFF
        self.dfcm[self.dfcm_hash] = delta
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40)) & self.mask
        self.last = value


def _leading_zero_bytes(x: int) -> int:
    """Number of leading zero bytes of a 64-bit word (0..8, capped at 7
    for the 3-bit code as in FPC, which treats 4 as 3)."""
    if x == 0:
        return 8
    return (64 - x.bit_length()) // 8


def fpc_compress(data: np.ndarray, table_bits: int = 16) -> bytes:
    """Losslessly compress a float array (any shape, float32/64)."""
    data = np.asarray(data)
    if data.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise DataError("FPC compresses float32/float64 arrays")
    is_f32 = data.dtype == np.float32
    if is_f32:
        # FPC is a double-precision algorithm; the standard adaptation
        # packs two consecutive float32 into one 64-bit word.
        raw = data.ravel().view(np.uint32).astype(np.uint64)
        if raw.size % 2:
            raw = np.concatenate([raw, np.zeros(1, dtype=np.uint64)])
        words = (raw[0::2] << np.uint64(32)) | raw[1::2]
    else:
        words = data.ravel().view(np.uint64)
    pred = _FPCPredictors(table_bits)
    headers = bytearray()
    residuals = bytearray()
    pending_header: int | None = None
    for value in words.tolist():
        fcm_pred, dfcm_pred = pred.predict()
        r_fcm = value ^ fcm_pred
        r_dfcm = value ^ dfcm_pred
        if r_fcm <= r_dfcm:
            selector, residual = 0, r_fcm
        else:
            selector, residual = 1, r_dfcm
        lzb = min(_leading_zero_bytes(residual), 7)
        if lzb == 4:
            lzb = 3  # FPC's 3-bit code skips "4" to reach 7
        nbytes = 8 - lzb
        code = (selector << 3) | lzb
        if pending_header is None:
            pending_header = code
        else:
            headers.append((pending_header << 4) | code)
            pending_header = None
        residuals.extend(residual.to_bytes(8, "big")[8 - nbytes :])
        pred.update(value)
    if pending_header is not None:
        headers.append(pending_header << 4)
    payload = struct.pack(
        "<4sBBQQ", _MAGIC, 0 if is_f32 else 1, table_bits, words.size,
        data.size,
    )
    payload += struct.pack("<Q", len(headers)) + bytes(headers) + bytes(residuals)
    return payload + struct.pack(f"<{data.ndim}Q", *data.shape) + struct.pack("<B", data.ndim)


def fpc_decompress(payload: bytes) -> np.ndarray:
    """Inverse of :func:`fpc_compress` (bit-exact)."""
    hsize = struct.calcsize("<4sBBQQ")
    if payload[:4] != _MAGIC:
        raise CorruptStreamError("bad FPC magic")
    _, dtype_code, table_bits, count, n_elements = struct.unpack(
        "<4sBBQQ", payload[:hsize]
    )
    pos = hsize
    (hlen,) = struct.unpack("<Q", payload[pos : pos + 8])
    pos += 8
    headers = payload[pos : pos + hlen]
    pos += hlen
    (ndim,) = struct.unpack("<B", payload[-1:])
    shape = struct.unpack(f"<{ndim}Q", payload[-1 - 8 * ndim : -1])
    residuals = payload[pos : len(payload) - 1 - 8 * ndim]

    pred = _FPCPredictors(table_bits)
    out = np.empty(count, dtype=np.uint64)
    rpos = 0
    for i in range(count):
        byte = headers[i // 2]
        code = (byte >> 4) if i % 2 == 0 else (byte & 0xF)
        selector = code >> 3
        lzb = code & 0x7
        nbytes = 8 - lzb
        chunk = residuals[rpos : rpos + nbytes]
        if len(chunk) != nbytes:
            raise CorruptStreamError("FPC residual stream truncated")
        rpos += nbytes
        residual = int.from_bytes(chunk, "big")
        fcm_pred, dfcm_pred = pred.predict()
        value = residual ^ (dfcm_pred if selector else fcm_pred)
        out[i] = value
        pred.update(value)
    if dtype_code == 0:
        pairs = np.empty(2 * count, dtype=np.uint32)
        pairs[0::2] = (out >> np.uint64(32)).astype(np.uint32)
        pairs[1::2] = (out & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        arr = pairs[:n_elements].view(np.float32)
    else:
        arr = out.view(np.float64)
    return arr.reshape(shape)
