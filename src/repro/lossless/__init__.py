"""From-scratch lossless codecs used as compressor backends.

* :mod:`repro.lossless.huffman` — canonical, length-limited Huffman coding
  with a vectorized encoder and a chunk-parallel decoder mirroring how
  cuSZ's GPU Huffman stage decodes fixed-size chunks in parallel.
* :mod:`repro.lossless.rle` — run-length coding for the long zero runs that
  dual-quantized Lorenzo residuals produce.
* :mod:`repro.lossless.lzss` — a byte-oriented LZ77/LZSS stage standing in
  for the dictionary coder (zstd/gzip) SZ applies after Huffman.
* :mod:`repro.lossless.pipeline` — composable codec chains.
"""

from repro.lossless.fpc import fpc_compress, fpc_decompress
from repro.lossless.huffman import HuffmanCodec
from repro.lossless.lzss import lzss_compress, lzss_decompress
from repro.lossless.pipeline import LosslessPipeline
from repro.lossless.rle import rle_decode, rle_encode

__all__ = [
    "HuffmanCodec",
    "fpc_compress",
    "fpc_decompress",
    "lzss_compress",
    "lzss_decompress",
    "LosslessPipeline",
    "rle_encode",
    "rle_decode",
]
