"""Byte-oriented LZSS (LZ77 with literal/match flags).

SZ's final stage runs a dictionary coder (zstd or gzip) over the Huffman
output; this module is the from-scratch stand-in.  Format per token:

* flag bit 0 -> literal byte follows (8 bits);
* flag bit 1 -> match: ``offset`` (``offset_bits``) and ``length - MIN_MATCH``
  (``length_bits``) follow.

The encoder uses a hash chain over 3-byte prefixes, capped probe depth, so
it is O(n * probes).  It processes input in pure Python over *match tokens*
(not bytes): compressible inputs collapse to few tokens, and incompressible
inputs short-circuit via the stored-block fallback in
:func:`lzss_compress`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptStreamError
from repro.util.bits import BitReader, BitWriter

_MAGIC_LZ = b"LZS1"
_MAGIC_RAW = b"LZS0"
MIN_MATCH = 3


def _find_matches(
    data: bytes, offset_bits: int, length_bits: int, max_probes: int
) -> list[tuple[int, int]]:
    """Greedy tokenization: list of (literal_byte | -1, ...) replaced by
    tuples ``(offset, length)`` with ``offset == 0`` meaning literal."""
    window = (1 << offset_bits) - 1
    max_match = MIN_MATCH + (1 << length_bits) - 1
    n = len(data)
    head: dict[int, int] = {}
    prev = np.full(n, -1, dtype=np.int64)
    tokens: list[tuple[int, int]] = []
    i = 0
    while i < n:
        best_len = 0
        best_off = 0
        if i + MIN_MATCH <= n:
            key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
            cand = head.get(key, -1)
            probes = 0
            while cand >= 0 and probes < max_probes:
                off = i - cand
                if off > window:
                    break
                limit = min(max_match, n - i)
                m = 0
                while m < limit and data[cand + m] == data[i + m]:
                    m += 1
                if m >= MIN_MATCH and m > best_len:
                    best_len, best_off = m, off
                    if m == max_match:
                        break
                cand = int(prev[cand])
                probes += 1
        if best_len >= MIN_MATCH:
            tokens.append((best_off, best_len))
            end = i + best_len
            while i < end and i + MIN_MATCH <= n:
                key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
                prev[i] = head.get(key, -1)
                head[key] = i
                i += 1
            i = end
        else:
            tokens.append((0, data[i]))
            if i + MIN_MATCH <= n:
                key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
                prev[i] = head.get(key, -1)
                head[key] = i
            i += 1
    return tokens


def lzss_compress(
    data: bytes,
    offset_bits: int = 16,
    length_bits: int = 8,
    max_probes: int = 16,
) -> bytes:
    """Compress ``data``; falls back to a stored block if LZSS expands it."""
    tokens = _find_matches(data, offset_bits, length_bits, max_probes)
    writer = BitWriter()
    for off, val in tokens:
        if off == 0:
            writer.write(0, 1)
            writer.write(val, 8)
        else:
            writer.write(1, 1)
            writer.write(off, offset_bits)
            writer.write(val - MIN_MATCH, length_bits)
    body = writer.getvalue()
    header = struct.pack(
        "<4sQQBB", _MAGIC_LZ, len(data), writer.bit_length, offset_bits, length_bits
    )
    out = header + body
    if len(out) >= len(data) + struct.calcsize("<4sQ"):
        return struct.pack("<4sQ", _MAGIC_RAW, len(data)) + data
    return out


def lzss_decompress(payload: bytes) -> bytes:
    """Inverse of :func:`lzss_compress`."""
    if payload[:4] == _MAGIC_RAW:
        (n,) = struct.unpack("<Q", payload[4:12])
        body = payload[12 : 12 + n]
        if len(body) != n:
            raise CorruptStreamError("stored LZSS block truncated")
        return bytes(body)
    if payload[:4] != _MAGIC_LZ:
        raise CorruptStreamError("bad LZSS magic")
    hsize = struct.calcsize("<4sQQBB")
    _, n, nbits, offset_bits, length_bits = struct.unpack("<4sQQBB", payload[:hsize])
    reader = BitReader(payload[hsize:], nbits)
    out = bytearray()
    while len(out) < n:
        if reader.read(1):
            off = reader.read(offset_bits)
            length = reader.read(length_bits) + MIN_MATCH
            if off == 0 or off > len(out):
                raise CorruptStreamError("invalid LZSS match offset")
            start = len(out) - off
            for k in range(length):
                out.append(out[start + k])
        else:
            out.append(reader.read(8))
    if len(out) != n:
        raise CorruptStreamError("LZSS output length mismatch")
    return bytes(out)
